#include "core/mps/proto.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::mps {

namespace {
/// Profiler key for an application message (matches node.cpp's keying).
obs::Profiler::MsgKey key_of(const Message& m) {
  return {m.from_process, m.to_process, m.seq};
}

/// Bytes of the per-message record inside an eager frame, excluding the
/// payload: from_thread, to_thread, seq, len.
constexpr std::size_t kEagerRecordBytes = 4 * 4;
}  // namespace

const char* to_string(ProtoMode m) {
  switch (m) {
    case ProtoMode::off: return "off";
    case ProtoMode::adaptive: return "adaptive";
    case ProtoMode::eager: return "eager";
    case ProtoMode::rendezvous: return "rendezvous";
  }
  return "?";
}

ProtoEngine::ProtoEngine(mts::Scheduler& host, Transport& transport, FlowControl& fc,
                         ErrorControl& ec, ProtoParams params, int rank, int n_procs,
                         double copy_cycles_per_byte, double fixed_cycles, Hooks hooks)
    : host_(host),
      transport_(transport),
      fc_(fc),
      ec_(ec),
      params_(params),
      rank_(rank),
      copy_cycles_per_byte_(copy_cycles_per_byte),
      fixed_cycles_(fixed_cycles),
      hooks_(std::move(hooks)),
      batches_(static_cast<std::size_t>(n_procs)),
      frame_seq_(static_cast<std::size_t>(n_procs), 0) {
  NCS_ASSERT(params_.coalesce_max_msgs >= 1);
  NCS_ASSERT(params_.coalesce_max_bytes >= 1);
}

bool ProtoEngine::use_rendezvous(std::size_t bytes) const {
  switch (params_.mode) {
    case ProtoMode::off:
    case ProtoMode::eager: return false;
    case ProtoMode::rendezvous: return true;
    case ProtoMode::adaptive: return bytes > crossover_bytes();
  }
  return false;
}

std::size_t ProtoEngine::crossover_bytes() const {
  if (params_.eager_max_bytes != 0) return params_.eager_max_bytes;
  // Eager's extra cost for an S-byte payload is the pack copy into the
  // coalescing buffer, S * copy_cycles_per_byte / cpu_hz. Rendezvous's
  // extra cost is the RTS/CTS round trip. They break even at
  // S* = rtt * copy_bandwidth. Until a real handshake has been measured,
  // the round trip is estimated as four fixed per-message transport costs
  // (RTS submit + receive, CTS submit + receive); afterwards the EWMA of
  // observed RTS->CTS delays takes over — congestion or loss pushing the
  // handshake out moves the crossover up, keeping mid-size messages on
  // the cheaper eager path.
  const double cpu_hz = host_.params().cpu_mhz * 1e6;
  const double copy_bw = cpu_hz / copy_cycles_per_byte_;  // bytes/sec
  double rtt_sec;
  if (rtt_ewma_ps_ > 0) {
    rtt_sec = rtt_ewma_ps_ * 1e-12;
  } else {
    const Duration per_msg = transport_.cost_hints().per_message;
    rtt_sec = per_msg.is_zero() ? 200e-6 : 4.0 * per_msg.sec();
  }
  const auto s = static_cast<std::size_t>(rtt_sec * copy_bw);
  return std::clamp<std::size_t>(s, 1024, 256 * 1024);
}

Message ProtoEngine::make_frame(int dst, Bytes payload) {
  return Message{rank_, kProtoThread, dst, kProtoThread,
                 frame_seq_[static_cast<std::size_t>(dst)]++, std::move(payload)};
}

// --- eager path (send-thread context) ---

void ProtoEngine::eager_enqueue(Message msg) {
  const int dst = msg.to_process;
  Batch& b = batches_[static_cast<std::size_t>(dst)];
  const std::size_t size = msg.data.size();
  // The pack copy into the coalescing buffer — the eager path's
  // size-proportional cost, weighed against the handshake by the
  // crossover.
  host_.charge_cycles(fixed_cycles_ + copy_cycles_per_byte_ * static_cast<double>(size),
                      sim::Activity::communicate);
  if (b.msgs.empty()) {
    ++pending_batches_;
    // First message arms the flush deadline. The timer fires in engine
    // context where flushing (which may block on flow control) is not
    // allowed, so it only parks a marker in the send queue.
    b.timer = host_.engine().schedule_after(params_.flush_timeout, [this, dst] {
      Batch& bb = batches_[static_cast<std::size_t>(dst)];
      bb.timer = 0;
      if (bb.msgs.empty() || bb.flush_requested) return;
      bb.flush_requested = true;
      if (hooks_.request_flush) hooks_.request_flush(dst);
    });
  }
  b.bytes += size;
  b.enqueued.push_back(host_.engine().now());
  b.msgs.push_back(std::move(msg));
  ++stats_.eager_msgs;
  stats_.eager_bytes += size;
  if (b.bytes >= params_.coalesce_max_bytes ||
      b.msgs.size() >= static_cast<std::size_t>(params_.coalesce_max_msgs)) {
    flush(dst, FlushReason::full);
  }
}

void ProtoEngine::flush(int dst, FlushReason reason) {
  Batch& b = batches_[static_cast<std::size_t>(dst)];
  if (b.timer != 0) {
    host_.engine().cancel(b.timer);
    b.timer = 0;
  }
  b.flush_requested = false;
  if (b.msgs.empty()) return;

  // Detach the batch before anything can block: if the flush-timeout
  // timer fires while this flush stalls on flow control, it must find an
  // empty batch, not re-flush these messages.
  std::vector<Message> msgs = std::move(b.msgs);
  std::vector<TimePoint> enqueued = std::move(b.enqueued);
  b.msgs.clear();
  b.enqueued.clear();
  b.bytes = 0;
  --pending_batches_;

  std::size_t frame_len = kFrameHeaderBytes;
  for (const Message& m : msgs) frame_len += kEagerRecordBytes + m.data.size();
  Bytes payload(frame_len);
  ByteWriter w(payload);
  w.u8(kFrameEager);
  w.u8(0);
  w.u32(static_cast<std::uint32_t>(msgs.size()));
  for (const Message& m : msgs) {
    w.u32(static_cast<std::uint32_t>(m.from_thread));
    w.u32(static_cast<std::uint32_t>(m.to_thread));
    w.u32(m.seq);
    w.u32(static_cast<std::uint32_t>(m.data.size()));
    w.bytes(m.data);
  }
  // Frame bookkeeping (headers were already paid for by the per-message
  // pack copies in eager_enqueue).
  host_.charge_cycles(fixed_cycles_, sim::Activity::communicate);
  Message frame = make_frame(dst, std::move(payload));

  ++stats_.eager_frames;
  switch (reason) {
    case FlushReason::full: ++stats_.flush_full; break;
    case FlushReason::timeout: ++stats_.flush_timeout; break;
    case FlushReason::idle: ++stats_.flush_idle; break;
    case FlushReason::ordered: ++stats_.flush_ordered; break;
  }

  const TimePoint began = host_.engine().now();
  if (prof_ != nullptr) {
    prof_->record_proto_count("eager_batch_occupancy",
                              static_cast<std::int64_t>(msgs.size()));
    for (const TimePoint& t : enqueued) prof_->record(obs::Layer::proto, began - t);
  }

  // One window credit and one ack per frame, not per coalesced message.
  fc_.before_send(frame);
  if (prof_ != nullptr) {
    const TimePoint admitted = host_.engine().now();
    for (const Message& m : msgs) prof_->on_admit(key_of(m), admitted);
  }
  hooks_.submit(frame);
  ec_.on_sent(frame);
  const TimePoint ended = host_.engine().now();
  if (prof_ != nullptr) {
    for (const Message& m : msgs) prof_->on_handoff(key_of(m), ended);
  }
  if (trace_ != nullptr) {
    trace_->complete(send_track_,
                     "eager->p" + std::to_string(dst) + " x" + std::to_string(msgs.size()) +
                         " " + std::to_string(frame.data.size()) + "B",
                     "mps", began, ended - began);
  }
}

void ProtoEngine::flush_all(FlushReason reason) {
  for (std::size_t dst = 0; dst < batches_.size(); ++dst) {
    if (!batches_[dst].msgs.empty()) flush(static_cast<int>(dst), reason);
  }
}

// --- rendezvous path ---

std::size_t ProtoEngine::chunk_payload_bytes(std::uint32_t peer_hint) const {
  std::size_t window = params_.rndv_chunk_bytes;
  if (window == 0) window = transport_.cost_hints().dma_window;
  if (window == 0) window = 8192;
  if (peer_hint != 0) window = std::min(window, static_cast<std::size_t>(peer_hint));
  // The chunk frame must fit the window with its NCS + frame headers on.
  const std::size_t overhead = kHeaderBytes + kFrameHeaderBytes;
  return window > overhead + 64 ? window - overhead : std::max<std::size_t>(window, 64);
}

bool ProtoEngine::rendezvous(const Message& msg) {
  const int dst = msg.to_process;
  // Per-source FIFO across the size boundary: coalesced predecessors to
  // this destination leave first (their frame seq precedes ours).
  flush(dst, FlushReason::ordered);
  ++stats_.rndv_transfers;
  const std::uint32_t id = next_transfer_++;

  // One window credit covers the whole transfer; the final chunk's
  // (credit-bearing) ack releases it. Rate pacing sees the true size.
  fc_.before_send(msg);
  if (prof_ != nullptr) prof_->on_admit(key_of(msg), host_.engine().now());

  RndvTx& st = rndv_tx_[id];
  st.waiter = host_.current();

  Bytes rts_payload(1 + 5 * 4);
  {
    ByteWriter w(rts_payload);
    w.u8(kCtlRts);
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(msg.from_thread));
    w.u32(static_cast<std::uint32_t>(msg.to_thread));
    w.u32(msg.seq);
    w.u32(static_cast<std::uint32_t>(msg.data.size()));
  }
  const Message rts{rank_, kControlThread, dst, kControlThread, 0, std::move(rts_payload)};

  const TimePoint handshake_began = host_.engine().now();
  int sends = 0;
  while (!st.cts) {
    if (sends > params_.cts_retry_limit) {
      // Handshake abandoned — the rendezvous analogue of error control
      // giving up. Return the credit (no ack is coming) and surface it.
      rndv_tx_.erase(id);
      fc_.on_ack(dst);
      ++stats_.rndv_give_ups;
      NCS_WARN("ncs.proto", "node %d giving up rendezvous to %d after %d RTS", rank_, dst,
               sends);
      if (trace_ != nullptr)
        trace_->instant(send_track_, "rndv give-up ->p" + std::to_string(dst), "mps",
                        host_.engine().now());
      if (hooks_.exception) hooks_.exception(NcsExceptionKind::message_timeout, dst, msg.seq);
      return false;
    }
    if (sends > 0) ++stats_.rts_resends;
    host_.charge_cycles(fixed_cycles_, sim::Activity::communicate);
    hooks_.submit(rts);
    ++sends;
    if (st.cts) break;  // CTS landed while the submit had us blocked
    st.waiting = true;
    const sim::EventId timer =
        host_.engine().schedule_after(params_.cts_timeout, [this, id] {
          // Wake the sender for an RTS resend — but only if it is still
          // parked for this CTS (the `waiting` flag): unblocking a thread
          // that moved on (or was already woken by the CTS) is a bug.
          auto it = rndv_tx_.find(id);
          if (it == rndv_tx_.end() || !it->second.waiting) return;
          it->second.waiting = false;
          host_.unblock(it->second.waiter);
        });
    host_.block(sim::Activity::communicate);
    st.waiting = false;
    host_.engine().cancel(timer);
  }
  const Duration handshake = host_.engine().now() - handshake_began;
  if (prof_ != nullptr) {
    prof_->record(obs::Layer::proto, handshake);
    prof_->record_proto("rts_cts_delay", handshake);
  }
  const auto sample = static_cast<double>(handshake.ps());
  rtt_ewma_ps_ = rtt_ewma_ps_ == 0.0 ? sample : 0.75 * rtt_ewma_ps_ + 0.25 * sample;

  const std::size_t chunk = chunk_payload_bytes(st.chunk_hint);
  const std::size_t wire_window = chunk + kHeaderBytes + kFrameHeaderBytes;
  std::size_t off = 0;
  do {
    const std::size_t len = std::min(chunk, msg.data.size() - off);
    const bool final_chunk = off + len == msg.data.size();
    Bytes payload(kFrameHeaderBytes + len);
    ByteWriter w(payload);
    w.u8(kFrameChunk);
    w.u8(final_chunk ? kChunkFinal : 0);
    w.u32(id);
    w.bytes(BytesView(msg.data).subspan(off, len));
    // Only fixed bookkeeping here: the staging copy into the NIC buffer
    // is the transport's submit cost, and not paying an additional pack
    // copy per byte is the rendezvous path's whole point.
    host_.charge_cycles(fixed_cycles_, sim::Activity::communicate);
    Message frame = make_frame(dst, std::move(payload));
    hooks_.submit_bulk(frame, wire_window);
    ec_.on_sent(frame);
    ++stats_.rndv_chunks;
    off += len;
  } while (off < msg.data.size());
  rndv_tx_.erase(id);
  const TimePoint ended = host_.engine().now();
  if (prof_ != nullptr) prof_->on_handoff(key_of(msg), ended);
  if (trace_ != nullptr) {
    trace_->complete(send_track_,
                     "rndv->p" + std::to_string(dst) + " " +
                         std::to_string(msg.data.size()) + "B",
                     "mps", handshake_began, ended - handshake_began);
  }
  return true;
}

// --- receive side ---

bool ProtoEngine::frame_takes_credit(const Message& frame) {
  if (frame.data.size() < 2) return true;
  const auto kind = static_cast<std::uint8_t>(frame.data[0]);
  if (kind == kFrameChunk) {
    return (static_cast<std::uint8_t>(frame.data[1]) & kChunkFinal) != 0;
  }
  return true;
}

void ProtoEngine::on_rts(const Message& ctl) {
  ByteReader r(ctl.data);
  r.skip(1);
  const std::uint32_t id = r.u32();
  const auto from_thread = static_cast<std::int32_t>(r.u32());
  const auto to_thread = static_cast<std::int32_t>(r.u32());
  const std::uint32_t msg_seq = r.u32();
  const std::uint32_t total = r.u32();
  const RxKey key{ctl.from_process, id};
  if (!rndv_done_.contains(key)) {
    // Create (or refresh the header of) the reassembly state. A duplicate
    // RTS — its CTS was lost — must not reset `buf`: chunks may already
    // be arriving.
    RndvRx& st = rndv_rx_[key];
    st.from_thread = from_thread;
    st.to_thread = to_thread;
    st.msg_seq = msg_seq;
    st.total = total;
  }
  // Always answer, even for a completed transfer: the sender only stops
  // resending RTS once a CTS gets through.
  send_cts(ctl.from_process, id);
}

void ProtoEngine::send_cts(int src, std::uint32_t transfer) {
  Bytes payload(1 + 2 * 4);
  ByteWriter w(payload);
  w.u8(kCtlCts);
  w.u32(transfer);
  // Advertise this side's DMA window so the sender's chunks also fit the
  // receiver's I/O buffers (0 = no constraint).
  w.u32(static_cast<std::uint32_t>(transport_.cost_hints().dma_window));
  host_.charge_cycles(fixed_cycles_, sim::Activity::communicate);
  // Control class, sent directly from the receive thread — exactly like
  // acks, it must not queue behind a send thread stalled on flow control.
  hooks_.submit(Message{rank_, kControlThread, src, kControlThread, 0, std::move(payload)});
}

void ProtoEngine::on_cts(const Message& ctl) {
  ByteReader r(ctl.data);
  r.skip(1);
  const std::uint32_t id = r.u32();
  const std::uint32_t hint = r.u32();
  const auto it = rndv_tx_.find(id);
  if (it == rndv_tx_.end()) return;  // stale CTS for a finished transfer
  RndvTx& st = it->second;
  st.cts = true;
  st.chunk_hint = hint;
  if (st.waiting) {
    st.waiting = false;
    host_.unblock(st.waiter);
  }
}

void ProtoEngine::rx_frame(Message frame) {
  ++stats_.frames_rx;
  ByteReader r(frame.data);
  const std::uint8_t kind = r.u8();
  const std::uint8_t flags = r.u8();
  const std::uint32_t arg = r.u32();
  switch (kind) {
    case kFrameEager: {
      host_.charge_cycles(fixed_cycles_, sim::Activity::communicate);
      for (std::uint32_t i = 0; i < arg; ++i) {
        Message m;
        m.from_process = frame.from_process;
        m.to_process = rank_;
        m.from_thread = static_cast<std::int32_t>(r.u32());
        m.to_thread = static_cast<std::int32_t>(r.u32());
        m.seq = r.u32();
        const std::uint32_t len = r.u32();
        m.data = to_bytes(r.bytes(len));
        // The unpack copy out of the frame buffer mirrors the sender's
        // pack copy.
        host_.charge_cycles(fixed_cycles_ + copy_cycles_per_byte_ * len,
                            sim::Activity::communicate);
        hooks_.deliver(std::move(m));
      }
      break;
    }
    case kFrameChunk: {
      const RxKey key{frame.from_process, arg};
      const auto it = rndv_rx_.find(key);
      if (it == rndv_rx_.end()) {
        // No reassembly state: either the transfer already completed (a
        // retransmitted final chunk) or its RTS was lost without error
        // control. Either way the chunk has nowhere to go.
        if (!rndv_done_.contains(key)) {
          ++stats_.orphan_chunks;
          NCS_WARN("ncs.proto", "node %d dropping orphan chunk (transfer %u from %d)", rank_,
                   arg, frame.from_process);
        }
        break;
      }
      RndvRx& st = it->second;
      append(st.buf, r.bytes(r.remaining()));
      // Fixed bookkeeping only: the transport already charged the copy
      // out of the kernel buffer per chunk.
      host_.charge_cycles(fixed_cycles_, sim::Activity::communicate);
      if ((flags & kChunkFinal) == 0) break;
      if (st.buf.size() != st.total) {
        // A lost middle chunk under EC none: the reassembly can never be
        // made whole (frames are not retransmitted), so drop it.
        ++stats_.rndv_failed;
        NCS_WARN("ncs.proto", "node %d rendezvous reassembly %zu/%zuB from %d, dropping",
                 rank_, st.buf.size(), st.total, frame.from_process);
        if (hooks_.exception)
          hooks_.exception(NcsExceptionKind::frame_error, frame.from_process, st.msg_seq);
        rndv_rx_.erase(it);
        break;
      }
      Message m{frame.from_process, st.from_thread, rank_, st.to_thread, st.msg_seq,
                std::move(st.buf)};
      rndv_rx_.erase(it);
      rndv_done_.insert(key);
      ++stats_.rndv_completed;
      hooks_.deliver(std::move(m));
      break;
    }
    default: NCS_UNREACHABLE("unknown NCS protocol frame kind");
  }
}

void ProtoEngine::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/eager_msgs", &stats_.eager_msgs);
  reg.counter(prefix + "/eager_frames", &stats_.eager_frames);
  reg.counter(prefix + "/eager_bytes", &stats_.eager_bytes);
  reg.counter(prefix + "/flush_full", &stats_.flush_full);
  reg.counter(prefix + "/flush_timeout", &stats_.flush_timeout);
  reg.counter(prefix + "/flush_idle", &stats_.flush_idle);
  reg.counter(prefix + "/flush_ordered", &stats_.flush_ordered);
  reg.counter(prefix + "/rndv_transfers", &stats_.rndv_transfers);
  reg.counter(prefix + "/rndv_chunks", &stats_.rndv_chunks);
  reg.counter(prefix + "/rndv_completed", &stats_.rndv_completed);
  reg.counter(prefix + "/rts_resends", &stats_.rts_resends);
  reg.counter(prefix + "/rndv_give_ups", &stats_.rndv_give_ups);
  reg.counter(prefix + "/frames_rx", &stats_.frames_rx);
  reg.counter(prefix + "/orphan_chunks", &stats_.orphan_chunks);
  reg.counter(prefix + "/rndv_failed", &stats_.rndv_failed);
}

}  // namespace ncs::mps
