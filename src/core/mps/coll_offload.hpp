// NicCollPort: the bridge between coll::Engine and the adapter's
// combine/forward contexts (atm/nic_coll), plus the fallback plane that
// keeps offloaded collectives correct under faults.
//
// The offload data path has no retransmission: a LinkFault burst or a
// mid-operation SwitchFault strands the combine tree, and every stranded
// rank times out in await(). Recovery must be decentralized — some ranks
// may already have completed through the NIC and will never look back — so
// each node runs a tiny always-on fetch server (system thread, reserved
// endpoints kCollFetchThread/kCollFetchReplyThread) serving a retained
// window of original contributions over the *reliable* message plane.
// A fallen-back rank aborts the NIC state (raising the fallen-back floor
// so late cells cannot double-contribute), fetches every peer's original
// contribution, and refolds them with coll::tree_fold — bit-identical to
// the firmware result by construction. Fetch requests for a sequence the
// server has not begun yet are parked until begin() reaches it, which is
// what preserves barrier semantics across a fallback.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "atm/nic_coll.hpp"
#include "coll/offload.hpp"
#include "core/mps/node.hpp"

namespace ncs::mps {

class NicCollPort final : public coll::OffloadPort {
 public:
  /// Builds the firmware engine on `nic` and spawns this node's fetch
  /// server. Selection thresholds and the offload timeout come from the
  /// node's coll::Params; `nic_params.radix` must equal
  /// coll::Params::offload_radix (asserted).
  NicCollPort(Node& node, atm::Nic& nic, atm::NicCollParams nic_params);

  // --- coll::OffloadPort ---
  void begin(std::uint64_t seq, coll::Op op, BytesView own) override;
  std::optional<Bytes> await(std::uint64_t seq) override;
  void abort(std::uint64_t seq) override;
  Bytes fetch(std::uint64_t seq, int rank) override;

  /// The firmware half (tests: census, stats, teardown injection).
  atm::NicCollEngine& engine() { return engine_; }
  const atm::NicCollEngine& engine() const { return engine_; }

  int rank() const { return node_.rank(); }

  struct Stats {
    std::uint64_t rearms = 0;            // contexts (re)programmed by begin()
    std::uint64_t fallbacks = 0;         // awaits that timed out
    std::uint64_t fetches_served = 0;
    std::uint64_t fetches_parked = 0;    // requests ahead of our begin()
    std::uint64_t late_completions = 0;  // NIC completions after an abort
  };
  const Stats& stats() const { return stats_; }

  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

 private:
  struct Waiter {
    mts::Thread* thread;
    Bytes result;
    bool filled = false;
    bool timed_out = false;
  };

  /// Contributions retained for peers' fetches. Bounds a root's run-ahead
  /// over a stranded rank: a fetch outside the window assert-stops rather
  /// than deadlocking the requester (keep offload timeouts well under
  /// window x per-op time; see DESIGN.md section 10).
  static constexpr std::uint64_t kRetainWindow = 1024;

  void server_main();
  void serve(int requester, std::uint64_t seq);
  void on_complete(std::uint64_t seq, Bytes result);

  Node& node_;
  mts::Scheduler& host_;
  atm::NicCollEngine engine_;
  Duration timeout_;

  std::map<std::uint64_t, Bytes> retained_;
  std::uint64_t begun_ = 0;  // next sequence begin() has not reached yet
  std::multimap<std::uint64_t, int> parked_;

  /// Sequences below this are resolved (completed or fallen back); their
  /// completions are late and must be dropped, exactly-once.
  std::uint64_t resolved_floor_ = 0;
  std::map<std::uint64_t, Waiter*> waiters_;
  std::map<std::uint64_t, Bytes> completed_;  // completions that beat await()

  Stats stats_;
};

}  // namespace ncs::mps
