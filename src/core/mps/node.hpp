// NCS per-process runtime — the paper's Fig 8 put together.
//
// Construction is NCS_init(flow, error): it creates the system threads —
// send, receive, and (when the retransmit policy is selected) error
// control — and binds the chosen transport tier (P4Transport for NSM,
// AtmTransport for HSM). Compute threads are user threads created with
// t_create (NCS_t_create).
//
// Paper call flow, reproduced exactly:
//   NCS_send wakes the send thread and blocks the caller; the send thread
//   performs the transfer (flow control, CPU-charged copies, NIC/socket
//   hand-off) and wakes the caller when done. NCS_recv blocks the caller
//   until the receive thread has a matching message; meanwhile every other
//   thread keeps computing — that is the overlap the tables measure.
//
// Flow-control policy code executes on the send/receive system threads
// (the paper draws FC as its own thread; the scheduling consequences are
// identical under cooperative threading). Error control does own a
// dedicated system thread, which performs retransmissions ordered by
// engine timers.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "coll/select.hpp"
#include "core/mps/error_control.hpp"
#include "core/mps/exception.hpp"
#include "core/mps/flow_control.hpp"
#include "core/mps/mailbox.hpp"
#include "core/mps/proto.hpp"
#include "core/mps/transport.hpp"
#include "core/mts/sync.hpp"

namespace ncs::coll {
class Engine;
class OffloadPort;
}

namespace ncs::rma {
class Engine;
}

namespace ncs::mps {

class Node {
 public:
  struct Options {
    FlowControlParams flow;
    ErrorControlParams error;
    /// Same-process sends bypass the transport entirely — threads share
    /// one address space (the paper: "the last communication step is local
    /// among threads and does not involve remote communication"). Only a
    /// memory copy is charged.
    double local_copy_cycles_per_byte = 0.75;
    double local_send_fixed_cycles = 200;
    /// Bound on every blocking receive (zero = wait forever, the paper's
    /// default). With error control `none` over a faulty network this is
    /// what turns a lost message into NcsException(recv_timeout) instead
    /// of a deadlocked run.
    Duration recv_timeout = Duration::zero();
    /// Collective-algorithm selection thresholds and per-op overrides
    /// (cluster configs reach this through ClusterConfig::ncs).
    coll::Params coll;
    /// Point-to-point protocol engine (eager coalescing / rendezvous);
    /// mode `off` (the default) keeps the legacy one-submit-per-message
    /// path bit-identical. See mps/proto.hpp.
    ProtoParams proto;
  };

  /// NCS_init: binds a transport and spawns the system threads.
  Node(mts::Scheduler& host, int rank, int n_procs, std::unique_ptr<Transport> transport,
       Options options);
  Node(mts::Scheduler& host, int rank, int n_procs, std::unique_ptr<Transport> transport)
      : Node(host, rank, n_procs, std::move(transport), Options()) {}
  ~Node();

  int rank() const { return rank_; }
  int n_procs() const { return n_procs_; }
  mts::Scheduler& host() { return host_; }
  Transport& transport() { return *transport_; }

  // --- thread services (NCS_t_create / NCS_block / NCS_unblock) ---

  /// Creates a user (compute) thread; returns its logical NCS thread id
  /// (0, 1, ... in creation order — the paper's THREAD1/THREAD2).
  int t_create(std::function<void()> body, int priority = mts::kDefaultPriority,
               std::string name = {});

  mts::Thread* user_thread(int tid);

  /// NCS_block: blocks the calling thread until NCS_unblock(tid).
  void block();
  void unblock(int tid);

  // --- message passing (thread context only) ---

  /// NCS_send: from_process is implicitly this node's rank.
  void send(int from_thread, int to_thread, int to_process, BytesView data);

  /// NCS_recv: blocks until a message matching the pattern arrives.
  /// from_thread/from_process accept kAnyThread/kAnyProcess wildcards;
  /// the actual source is reported through the optional out-params.
  Bytes recv(int from_thread, int from_process, int to_thread,
             int* src_thread = nullptr, int* src_process = nullptr);

  /// NCS_bcast: one send per listed endpoint (1-to-many group primitive).
  void bcast(int from_thread, std::span<const Endpoint> destinations, BytesView data);

  /// Non-blocking probe for a matching pending message.
  bool available(int from_thread, int from_process, int to_thread) const;

  /// Cross-process barrier; every process must call it once per phase
  /// (from any one of its threads). Dissemination algorithm at scale,
  /// flat rank-0 convergecast for small groups (coll::select).
  void barrier();

  // --- group communication (paper Section 3.1: 1-to-many, many-to-1,
  //     many-to-many). Collectives: every process calls the same operation
  //     in the same order, each from one thread. All of them delegate to
  //     the coll::Engine, which picks flat/tree/ring per call from the
  //     payload size and group size (Options::coll overrides). ---

  /// many-to-1: every process contributes; the root receives all
  /// contributions indexed by rank (its own included). Non-roots get {}.
  std::vector<Bytes> gather(int root, BytesView contribution);

  /// 1-to-many: the root supplies one payload per rank (size n_procs);
  /// every process returns its own slice. Non-roots pass {}.
  Bytes scatter(int root, std::span<const Bytes> payloads);

  /// 1-to-many collective broadcast: the root's payload lands on every
  /// rank (the endpoint-list bcast above is the paper's thread-addressed
  /// primitive; this is the group-plane collective).
  Bytes bcast(int root, BytesView payload);

  /// many-to-many: everyone exchanges with everyone; returns the payloads
  /// indexed by source rank (own contribution included).
  std::vector<Bytes> all_to_all(BytesView contribution);

  /// many-to-many: every rank returns all contributions indexed by source
  /// rank (ring or flat per coll::select).
  std::vector<Bytes> allgather(BytesView contribution);

  /// many-to-1 reduction: element-wise sum of equal-length double vectors
  /// at the root (empty elsewhere).
  std::vector<double> reduce_sum(int root, std::span<const double> values);

  /// many-to-many reduction: every rank gets the element-wise sum
  /// (recursive doubling for small payloads, chunk-pipelined ring for
  /// large ones).
  std::vector<double> allreduce_sum(std::span<const double> values);

  /// Rank r returns coll::segment_of(n, n_procs, r) of the element-wise
  /// sum — the ring allreduce's first half as a standalone op.
  std::vector<double> reduce_scatter_sum(std::span<const double> values);

  /// The collective engine (algorithm_for introspection, Params).
  coll::Engine& coll() { return *coll_; }

  /// Attaches the NIC-offload port (must be uniform across the group —
  /// see coll::Engine::set_offload). The port's lifetime is the caller's
  /// problem; the cluster harness owns one per node.
  void set_coll_offload(coll::OffloadPort* port);

  // --- one-sided plane (src/rma; optional, attached by the harness) ---

  /// Attaches the one-sided engine; also routes its failed completions
  /// into this node's exception handler.
  void set_rma(rma::Engine* engine);
  bool has_rma() const { return rma_ != nullptr; }
  /// The one-sided engine; asserts one is attached (cluster configs enable
  /// it with `rma_enabled`).
  rma::Engine& rma();

  // --- exception handling (paper Section 3.1, fourth service class) ---

  /// Failure kinds surfaced by the runtime (see exception.hpp; blocking
  /// calls additionally *throw* NcsException so threads never hang).
  using Exception = NcsExceptionKind;

  /// Handler invoked from system context (must not block) when the runtime
  /// detects a delivery failure: (kind, peer process, sequence or 0).
  using ExceptionHandler = std::function<void(Exception, int, std::uint32_t)>;
  void set_exception_handler(ExceptionHandler handler) {
    exception_handler_ = std::move(handler);
  }

  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t bcasts = 0;
    /// Collective operations entered (gather/scatter/bcast/barrier/...).
    std::uint64_t collectives = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t local_deliveries = 0;
    /// NcsExceptions thrown into application threads (recv timeouts).
    std::uint64_t exceptions = 0;
    /// User threads that terminated by NcsException instead of returning.
    std::uint64_t threads_aborted = 0;
  };
  const Stats& stats() const { return stats_; }
  const FlowControl& flow_control() const { return fc_; }
  const ErrorControl& error_control() const { return ec_; }
  const ProtoEngine& proto() const { return *proto_; }

  /// Registers node + flow/error-control counters under `prefix`
  /// (e.g. "p0/mps" yields "p0/mps/sends", "p0/mps/flow/window_stalls", ...).
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// Creates "<prefix>/send" and "<prefix>/recv" trace tracks: per-transfer
  /// spans on the send track (flow-control stalls included), delivery
  /// instants on the recv track, retransmit instants from error control.
  /// When tracing is on, each data message additionally carries a Chrome
  /// flow event pair (id = msg_flow_id) so Perfetto draws an arrow from the
  /// send span on this host to the recv span on the destination host.
  void set_trace(obs::TraceLog* trace, const std::string& prefix);

  /// Stamps every data message's lifecycle (enqueue/dequeue/admit/handoff/
  /// deliver/wakeup) into `prof` and forwards it to the flow/error-control
  /// policies and the transport. Control traffic (acks, barrier tokens,
  /// which reuse seq 0) is not profiled.
  void set_profiler(obs::Profiler* prof);

  /// Flight-recorder hookup: every typed NcsException upcall (recv
  /// timeout, frame error, one-sided failure) and every error-control
  /// give-up on this node *triggers* the recorder — the first such failure
  /// in the run dumps the snapshot. Does not disturb the application's
  /// exception handler.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  struct SendRequest {
    Message msg;
    mts::Event* done;    // null for fire-and-forget (bcast fan-out tail)
    int flush_dst = -1;  // >= 0: flush-timeout marker, msg is empty
  };

  void send_thread_main();
  void recv_thread_main();
  void ec_thread_main();
  /// Mailbox receive under the configured timeout; counts and reports the
  /// exception before rethrowing it into the calling thread.
  Message recv_matching(const Pattern& pattern);
  void submit_locked(const Message& msg);
  void send_ack_for(const Message& msg, bool credit);
  void handle_control(const Message& msg);
  /// Receive-side hand-off to the mailbox (trace instant + profiler
  /// deliver stamp) — shared by the legacy path and the protocol engine.
  void deliver_from_network(Message msg);

  mts::Scheduler& host_;
  int rank_;
  int n_procs_;
  std::unique_ptr<Transport> transport_;
  Options options_;

  Mailbox mailbox_;
  mts::Mutex submit_mutex_;
  mts::Channel<SendRequest> send_queue_;
  mts::Channel<Message> retx_queue_;
  FlowControl fc_;
  ErrorControl ec_;
  std::unique_ptr<ProtoEngine> proto_;

  ExceptionHandler exception_handler_;

  /// Collective-plane send/recv (endpoint kCollectiveThread). `wait=false`
  /// only queues the transfer so fan-outs pipeline; `wait=true` blocks
  /// until the transport hand-off (NCS_send semantics).
  void collective_send(int to_process, BytesView data, bool wait);
  Bytes collective_recv(int from_process);

  /// Adapts this node's collective plane to coll::Fabric.
  struct CollFabric;
  std::unique_ptr<CollFabric> coll_fabric_;
  std::unique_ptr<coll::Engine> coll_;
  rma::Engine* rma_ = nullptr;  // not owned (lives beside the node)

  /// Guards every public collective entry point: thread-context check and
  /// the collectives stat.
  void enter_collective();

  std::vector<std::uint32_t> next_seq_;  // per destination process
  std::vector<mts::Thread*> user_threads_;

  /// Recv-side trace span + flow end + profiler wakeup stamp for a message
  /// just returned to the application; `wait_began` is when the receive
  /// call started blocking.
  void note_received(const Message& msg, TimePoint wait_began);

  obs::TraceLog* trace_ = nullptr;
  int send_track_ = -1;
  int recv_track_ = -1;
  obs::Profiler* prof_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;

  Stats stats_;
};

}  // namespace ncs::mps
