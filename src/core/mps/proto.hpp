// Size-adaptive point-to-point protocol engine: eager coalescing for
// small messages, rendezvous (RTS/CTS + chunked bulk transfer) for large
// ones.
//
// The paper charges a fixed per-message host cost on every transfer (trap
// + NCS bookkeeping on HSM, syscall + p4 + TCP on NSM). For small
// messages that fixed cost dominates, so the engine batches consecutive
// sends to the same destination into a single transport frame — one trap,
// one flow-control credit, one ack for the whole batch — and the caller's
// NCS_send completes as soon as its payload is copied into the batch
// (buffered-send semantics; the paper's hand-off point moves earlier, the
// delivery guarantees are unchanged because the frame rides the same
// error-control machinery). For large messages the extra staging copy
// dominates instead, so the engine first runs an RTS/CTS handshake (the
// receiver confirms it is reachable and advertises its NIC's I/O-buffer
// size) and then streams the payload as chunk frames sized to the
// multi-buffer DMA window (Fig 2) via Transport::submit_bulk — fewer
// traps per byte, and each copy fills exactly the buffer the adapter is
// about to drain.
//
// The eager/rendezvous crossover is picked per send: forced by
// ProtoParams::eager_max_bytes when set, otherwise derived from the
// transport's cost hints (the payload size where the RTS/CTS round trip
// equals the eager pack-copy cost) and refined online from measured
// handshake delays.
//
// Frames travel as ordinary Messages addressed to kProtoThread with their
// own gap-free per-destination sequence space: they — not the coalesced
// messages inside them — are the unit of flow-control credits and of
// error-control ack/dedup/reorder, so per-source FIFO delivery holds
// across mixed eager/rendezvous traffic. The receiving ProtoEngine
// unpacks frames back into ordinary messages before any mailbox pattern
// sees them.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/mps/error_control.hpp"
#include "core/mps/exception.hpp"
#include "core/mps/flow_control.hpp"
#include "core/mps/transport.hpp"
#include "core/mts/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace ncs::mps {

// --- control-plane message kinds (payload byte 0 of a message addressed
//     to kControlThread) ---
inline constexpr std::uint8_t kCtlAck = 1;
/// Rendezvous request-to-send: [kind][u32 transfer][i32 from_thread]
/// [i32 to_thread][u32 msg_seq][u32 total_bytes].
inline constexpr std::uint8_t kCtlRts = 2;
/// Rendezvous clear-to-send: [kind][u32 transfer][u32 chunk_hint].
inline constexpr std::uint8_t kCtlCts = 3;

// --- frame kinds (payload byte 0 of a message addressed to kProtoThread;
//     fixed 6-byte frame header [u8 kind][u8 flags][u32 arg]) ---
/// Eager batch: arg = message count, then per message
/// [i32 from_thread][i32 to_thread][u32 seq][u32 len][len bytes].
inline constexpr std::uint8_t kFrameEager = 1;
/// Rendezvous chunk: arg = transfer id, flags bit 0 = final chunk; the
/// remaining bytes are the next in-order slice of the payload.
inline constexpr std::uint8_t kFrameChunk = 2;
inline constexpr std::uint8_t kChunkFinal = 1;
inline constexpr std::size_t kFrameHeaderBytes = 6;

enum class ProtoMode : std::uint8_t {
  off,         // legacy path: one transport submit per message
  adaptive,    // eager at or below the crossover, rendezvous above
  eager,       // force eager/coalescing for every size
  rendezvous,  // force RTS/CTS for every size
};

const char* to_string(ProtoMode m);

struct ProtoParams {
  ProtoMode mode = ProtoMode::off;

  /// Largest payload still sent eagerly under `adaptive` (bytes). 0 = pick
  /// automatically from the transport's cost hints + measured RTS/CTS
  /// delays (see ProtoEngine::crossover_bytes).
  std::size_t eager_max_bytes = 0;

  /// Eager batch limits: a batch is flushed when its payload bytes or its
  /// message count would exceed these, when `flush_timeout` elapses since
  /// the first message entered it, or when the send queue runs dry
  /// (`flush_on_idle`).
  std::size_t coalesce_max_bytes = 4096;
  int coalesce_max_msgs = 16;
  Duration flush_timeout = Duration::microseconds(50);
  bool flush_on_idle = true;

  /// Rendezvous chunk payload bytes. 0 = size chunks to the transport's
  /// DMA window (cost_hints().dma_window, e.g. one HSM NIC I/O buffer),
  /// additionally bounded by the window the receiver advertises in CTS.
  std::size_t rndv_chunk_bytes = 0;

  /// The RTS is retransmitted every `cts_timeout` until the CTS arrives;
  /// past `cts_retry_limit` resends the transfer is abandoned (window
  /// credit returned, message_timeout raised) — the rendezvous analogue of
  /// error control giving up.
  Duration cts_timeout = Duration::milliseconds(50);
  int cts_retry_limit = 10;
};

/// Per-node protocol engine. Owned by Node; every method runs on one of
/// the node's system threads (send thread for the transmit half, receive
/// thread for on_rts/on_cts/rx_frame) except the engine-context flush
/// timer, which only requests a flush through Hooks::request_flush.
class ProtoEngine {
 public:
  /// Seams back into the owning Node (the engine deliberately does not see
  /// Node itself).
  struct Hooks {
    /// Serialized transport submit (Node::submit_locked). May block.
    std::function<void(const Message&)> submit;
    /// Serialized bulk submit for rendezvous chunk frames.
    std::function<void(const Message&, std::size_t chunk_hint)> submit_bulk;
    /// Receive-side hand-off of a reconstructed application message
    /// (trace + profiler deliver stamp + mailbox).
    std::function<void(Message)> deliver;
    /// Engine context -> send thread: enqueue a flush marker for `dst`
    /// (the flush itself must run on the send thread).
    std::function<void(int dst)> request_flush;
    /// Delivery-failure report (system context, must not block).
    std::function<void(NcsExceptionKind, int peer, std::uint32_t seq)> exception;
  };

  ProtoEngine(mts::Scheduler& host, Transport& transport, FlowControl& fc, ErrorControl& ec,
              ProtoParams params, int rank, int n_procs, double copy_cycles_per_byte,
              double fixed_cycles, Hooks hooks);

  bool enabled() const { return params_.mode != ProtoMode::off; }
  const ProtoParams& params() const { return params_; }

  /// True when a payload of `bytes` should take the rendezvous path under
  /// the configured mode.
  bool use_rendezvous(std::size_t bytes) const;

  /// The eager/rendezvous boundary currently in force (eager at or below).
  std::size_t crossover_bytes() const;

  // --- send-thread context ---

  enum class FlushReason : std::uint8_t { full, timeout, idle, ordered };

  /// Buffered send: copies `msg` into its destination's batch (the caller
  /// may be woken immediately afterwards) and flushes inline when the
  /// batch fills.
  void eager_enqueue(Message msg);

  /// Flushes the destination's pending batch as one frame (no-op when
  /// empty). May block on flow control.
  void flush(int dst, FlushReason reason);

  /// Flushes every non-empty batch (send queue ran dry).
  void flush_all(FlushReason reason);

  /// True when some batch holds messages (used by the idle-flush check).
  bool has_pending() const { return pending_batches_ > 0; }

  /// Rendezvous transfer: RTS/CTS handshake, then chunked bulk transfer.
  /// Blocks the send thread until the last chunk's hand-off. Returns false
  /// when the handshake timed out past the retry limit (transfer
  /// abandoned; credit returned and the exception hook already invoked).
  bool rendezvous(const Message& msg);

  // --- receive-thread context ---

  static bool is_frame(const Message& msg) { return msg.to_thread == kProtoThread; }

  /// Whether the ack for this frame returns a flow-control window credit:
  /// eager frames and final rendezvous chunks do (they are what
  /// before_send charged); middle chunks ride their transfer's credit.
  static bool frame_takes_credit(const Message& frame);

  /// In-order frame from error control: unpack an eager batch into
  /// individual deliveries, or append a rendezvous chunk (delivering the
  /// reassembled message on the final one).
  void rx_frame(Message frame);

  void on_rts(const Message& ctl);
  void on_cts(const Message& ctl);

  struct Stats {
    std::uint64_t eager_msgs = 0;    // messages coalesced into batches
    std::uint64_t eager_frames = 0;  // frames flushed
    std::uint64_t eager_bytes = 0;   // payload bytes through eager batches
    std::uint64_t flush_full = 0;
    std::uint64_t flush_timeout = 0;
    std::uint64_t flush_idle = 0;
    std::uint64_t flush_ordered = 0;  // flushed ahead of a rendezvous/fence
    std::uint64_t rndv_transfers = 0;
    std::uint64_t rndv_chunks = 0;
    std::uint64_t rndv_completed = 0;  // receiver-side reassemblies delivered
    std::uint64_t rts_resends = 0;
    std::uint64_t rndv_give_ups = 0;  // handshakes abandoned past the limit
    std::uint64_t frames_rx = 0;
    std::uint64_t orphan_chunks = 0;  // chunk with no matching RTS state
    std::uint64_t rndv_failed = 0;    // reassembly size mismatch (loss, no EC)
  };
  const Stats& stats() const { return stats_; }

  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;
  void set_trace(obs::TraceLog* trace, int send_track, int recv_track) {
    trace_ = trace;
    send_track_ = send_track;
    recv_track_ = recv_track;
  }
  /// Layer::proto gets batch-residency and handshake delays; the named
  /// proto histograms get eager batch occupancy and RTS->CTS delay.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

 private:
  struct Batch {
    std::vector<Message> msgs;
    std::vector<TimePoint> enqueued;  // parallel to msgs, for residency
    std::size_t bytes = 0;            // payload bytes (headers excluded)
    sim::EventId timer = 0;           // pending flush-timeout event
    bool flush_requested = false;     // a timer marker sits in the send queue
  };

  /// Sender-side handshake state, keyed by transfer id.
  struct RndvTx {
    mts::Thread* waiter = nullptr;
    bool waiting = false;  // parked specifically for the CTS (not elsewhere)
    bool cts = false;
    std::uint32_t chunk_hint = 0;  // receiver's advertised window (bytes)
  };

  /// Receiver-side reassembly state, keyed (source, transfer id).
  struct RndvRx {
    int from_thread = 0;
    int to_thread = 0;
    std::uint32_t msg_seq = 0;
    std::size_t total = 0;
    Bytes buf;
  };
  using RxKey = std::pair<int, std::uint32_t>;

  Message make_frame(int dst, Bytes payload);
  void send_cts(int src, std::uint32_t transfer);
  std::size_t chunk_payload_bytes(std::uint32_t peer_hint) const;

  mts::Scheduler& host_;
  Transport& transport_;
  FlowControl& fc_;
  ErrorControl& ec_;
  ProtoParams params_;
  int rank_;
  double copy_cycles_per_byte_;
  double fixed_cycles_;
  Hooks hooks_;

  std::vector<Batch> batches_;             // per destination
  std::vector<std::uint32_t> frame_seq_;   // per destination, gap-free
  int pending_batches_ = 0;

  std::uint32_t next_transfer_ = 1;
  std::map<std::uint32_t, RndvTx> rndv_tx_;
  std::map<RxKey, RndvRx> rndv_rx_;
  /// Completed inbound transfers: a duplicated RTS (its CTS was lost) must
  /// be re-CTS'd without restarting the reassembly.
  std::set<RxKey> rndv_done_;

  /// EWMA of measured RTS->CTS delays (picoseconds); refines the automatic
  /// crossover once real handshakes have been observed.
  double rtt_ewma_ps_ = 0.0;

  obs::TraceLog* trace_ = nullptr;
  int send_track_ = -1;
  int recv_track_ = -1;
  obs::Profiler* prof_ = nullptr;

  Stats stats_;
};

}  // namespace ncs::mps
