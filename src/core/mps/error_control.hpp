// Error-control policies.
//
// The paper's system threads include an error-control thread selected at
// NCS_init time (the evaluated configuration delegates to p4, i.e. `none`
// — TCP already guarantees delivery on that path). The HSM path rides raw
// AAL5, which detects corruption/loss but does not recover; `retransmit`
// adds positive acknowledgement + timeout retransmission + duplicate
// suppression on top, restoring delivery over lossy WAN links (exercised
// by the ablation benches and loss-injection tests).
//
// Division of labour: the sender side records in-flight messages and
// re-queues timed-out ones via the Node's error-control thread; the
// receiver side deduplicates by (source, sequence) and triggers acks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/mps/message.hpp"
#include "core/mts/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace ncs::mps {

enum class ErrorControlKind { none, retransmit };

const char* to_string(ErrorControlKind k);

struct ErrorControlParams {
  ErrorControlKind kind = ErrorControlKind::none;
  Duration rto = Duration::milliseconds(50);
  int max_retries = 10;
};

class ErrorControl {
 public:
  /// `retransmit_fn` re-queues a message for (re)transmission; it is
  /// invoked from engine context and must not block.
  ErrorControl(sim::Engine& engine, ErrorControlParams params,
               std::function<void(Message)> retransmit_fn);

  bool wants_acks() const { return params_.kind == ErrorControlKind::retransmit; }

  /// Sender: called by the send thread after a successful hand-off.
  void on_sent(const Message& msg);

  /// Sender: ack received for (peer, seq); stops retransmission.
  void on_ack(int from_process, std::uint32_t seq);

  /// Receiver: admission. Returns the messages now deliverable, in
  /// sequence order. Duplicates (which must still be acked — the original
  /// ack may have been lost) yield nothing; so do out-of-order arrivals,
  /// which are held until the gap before them fills — NCS guarantees
  /// per-source FIFO delivery even when a retransmission overtakes later
  /// traffic. The none policy passes everything straight through.
  std::vector<Message> accept(Message msg);

  /// All sent messages acknowledged (or policy is none).
  bool idle() const { return in_flight_.empty(); }

  /// Optional: invoked when a message exhausts its retries (engine
  /// context; must not block), with the abandoned message itself — the
  /// handler needs more than (peer, seq) now that protocol frames carry
  /// differing flow-control credit (proto.hpp: only credit-bearing frames
  /// return a window slot on failure).
  void set_give_up_handler(std::function<void(const Message&)> handler) {
    give_up_handler_ = std::move(handler);
  }

  struct Stats {
    std::uint64_t retransmits = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t give_ups = 0;
    /// Arrivals held back because an earlier sequence was still missing.
    std::uint64_t reorders = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Registers the policy's counters under `prefix` (e.g. "p0/mps/ec").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// Retransmit / give-up instants are emitted onto `track`.
  void set_trace(obs::TraceLog* trace, int track) {
    trace_ = trace;
    trace_track_ = track;
  }

  /// First-transmission -> retransmission delays feed Layer::retx_delay.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

 private:
  struct Key {
    int peer;
    std::uint32_t seq;
    auto operator<=>(const Key&) const = default;
  };
  struct InFlight {
    Message msg;
    sim::EventId timer = 0;
    int attempts = 0;
    TimePoint first_sent;
  };

  void arm_timer(const Key& key);

  sim::Engine& engine_;
  ErrorControlParams params_;
  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  obs::Profiler* prof_ = nullptr;
  std::function<void(Message)> retransmit_fn_;
  std::function<void(const Message&)> give_up_handler_;

  /// Receiver-side state per source: sequences below `low` have all been
  /// delivered; `held` buffers arrivals above a gap until it fills (FIFO
  /// reorder buffer, doubling as the dedup record for those sequences).
  struct SeenState {
    std::uint32_t low = 0;
    std::map<std::uint32_t, Message> held;
  };

  std::map<Key, InFlight> in_flight_;
  std::map<int, SeenState> seen_;

  Stats stats_;
};

}  // namespace ncs::mps
