// Message-passing filters (paper Figs 6/12): adapters that map another
// tool's primitives onto NCS so "any parallel/distributed application
// written using these tools can be ported to NCS without any change".
//
// P4Filter exposes p4's typed, wildcard-matched interface on top of an
// mps::Node: the p4 message type rides a small header inside the NCS
// payload, endpoints are thread 0 of each process, and type-selective
// receives are implemented with a local reorder queue (NCS matches on
// endpoints; the filter matches on type).
#pragma once

#include <cstdint>
#include <list>
#include <span>

#include "core/mps/node.hpp"

namespace ncs::mps {

class P4Filter {
 public:
  explicit P4Filter(Node& node) : node_(node) {}

  int my_id() const { return node_.rank(); }
  int num_procs() const { return node_.n_procs(); }

  /// p4_send: typed send to process `dst`.
  void send(int type, int dst, BytesView data);

  /// p4_recv: blocking receive; *type/*from may be -1 wildcards and return
  /// the matched message's type and source.
  Bytes recv(int* type, int* from);

  /// p4_messages_available-style probe over already-arrived messages.
  bool messages_available(int* type, int* from);

  /// p4_broadcast: to every other process.
  void broadcast(int type, BytesView data);

  /// p4_global_barrier, via the NCS barrier service.
  void global_barrier() { node_.barrier(); }

 private:
  struct Entry {
    int type;
    int from;
    Bytes data;
  };

  static bool matches(int want_type, int want_from, const Entry& e) {
    return (want_type == -1 || want_type == e.type) && (want_from == -1 || want_from == e.from);
  }

  /// Drains every message already in the NCS mailbox into the local queue.
  void drain_available();

  Node& node_;
  std::list<Entry> queue_;  // type-reorder buffer
};

/// PVM-flavored filter: PVM 3's buffer-oriented interface (initsend /
/// pk* / send, recv / upk*) on NCS — the second adapter in the paper's
/// Fig 6. Typed packing is length-prefixed so upk* calls can verify they
/// match the pk* sequence, as PVM's XDR encoding effectively did.
class PvmFilter {
 public:
  static constexpr int kAnyTid = -1;
  static constexpr int kAnyTag = -1;

  explicit PvmFilter(Node& node) : p4_(node), node_(node) {}

  /// PVM task ids are process ranks here.
  int mytid() const { return node_.rank(); }
  int ntasks() const { return node_.n_procs(); }

  // -- send side --
  void initsend() { tx_.clear(); }
  void pkint(std::span<const std::int32_t> values);
  void pkdouble(std::span<const double> values);
  void pkbytes(BytesView data);
  void send(int tid, int tag);

  // -- receive side --
  /// Blocks until a message matching (tid, tag) arrives and makes it the
  /// active unpack buffer. Returns the sender's tid.
  int recv(int tid, int tag, int* actual_tag = nullptr);
  /// Non-blocking probe.
  bool probe(int tid, int tag);
  void upkint(std::span<std::int32_t> out);
  void upkdouble(std::span<double> out);
  Bytes upkbytes();

 private:
  enum class Kind : std::uint8_t { ints = 1, doubles = 2, bytes = 3 };
  void pk_raw(Kind kind, BytesView raw);
  BytesView upk_raw(Kind kind);

  P4Filter p4_;
  Node& node_;
  Bytes tx_;
  Bytes rx_;
  std::size_t rx_pos_ = 0;
};

/// MPI-flavored filter: (destination, tag) point-to-point plus the basic
/// collectives, mapped onto the same NCS services — the third adapter the
/// paper's Fig 6 sketches (p4, PVM, MPI applications over NCS).
class MpiFilter {
 public:
  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;

  explicit MpiFilter(Node& node) : p4_(node), node_(node) {}

  int rank() const { return node_.rank(); }
  int size() const { return node_.n_procs(); }

  void send(BytesView data, int dest, int tag) { p4_.send(tag, dest, data); }

  /// Blocking receive with MPI_ANY_SOURCE / MPI_ANY_TAG wildcards; the
  /// matched envelope is reported through the optional out-params.
  Bytes recv(int source, int tag, int* actual_source = nullptr, int* actual_tag = nullptr) {
    int t = tag;
    int f = source;
    Bytes data = p4_.recv(&t, &f);
    if (actual_source != nullptr) *actual_source = f;
    if (actual_tag != nullptr) *actual_tag = t;
    return data;
  }

  /// MPI_Bcast: root's buffer replaces everyone's.
  void bcast(Bytes& buffer, int root);

  /// MPI_Gather of variable-size buffers (root gets all, by rank).
  std::vector<Bytes> gather(BytesView contribution, int root) {
    return node_.gather(root, contribution);
  }

  /// MPI_Reduce(MPI_SUM) over doubles.
  std::vector<double> reduce_sum(std::span<const double> values, int root) {
    return node_.reduce_sum(root, values);
  }

  void barrier() { node_.barrier(); }

 private:
  P4Filter p4_;
  Node& node_;
};

}  // namespace ncs::mps
