#include "core/mps/mailbox.hpp"

#include <utility>

namespace ncs::mps {

void Mailbox::deliver(Message msg) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    Waiter* w = *it;
    if (w->pattern.matches(msg)) {
      waiters_.erase(it);
      w->msg = std::move(msg);
      w->filled = true;
      sched_.unblock(w->thread);
      return;
    }
  }
  pending_.push_back(std::move(msg));
}

Message Mailbox::recv(Pattern pattern, Duration timeout) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &sched_, "recv from a foreign thread");
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (pattern.matches(*it)) {
      Message m = std::move(*it);
      pending_.erase(it);
      return m;
    }
  }
  Waiter w{pattern, sched_.current()};
  waiters_.push_back(&w);
  sim::EventId timer = 0;
  if (!timeout.is_zero()) {
    timer = sched_.engine().schedule_after(timeout, [this, &w] {
      // The waiter is on this thread's stack and is only withdrawn here or
      // on delivery, so the pointer is valid whenever the timer fires.
      if (w.filled) return;
      w.timed_out = true;
      waiters_.remove(&w);
      sched_.unblock(w.thread);
    });
  }
  while (!w.filled && !w.timed_out) sched_.block(sim::Activity::communicate);
  if (w.timed_out)
    throw NcsException(NcsExceptionKind::recv_timeout, pattern.from_process, 0);
  if (timer != 0) sched_.engine().cancel(timer);
  return std::move(w.msg);
}

bool Mailbox::available(const Pattern& pattern) const {
  for (const Message& m : pending_)
    if (pattern.matches(m)) return true;
  return false;
}

}  // namespace ncs::mps
