#include "core/mps/mailbox.hpp"

#include <utility>

namespace ncs::mps {

void Mailbox::deliver(Message msg) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    Waiter* w = *it;
    if (w->pattern.matches(msg)) {
      waiters_.erase(it);
      w->msg = std::move(msg);
      w->filled = true;
      sched_.unblock(w->thread);
      return;
    }
  }
  pending_.push_back(std::move(msg));
}

Message Mailbox::recv(Pattern pattern) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &sched_, "recv from a foreign thread");
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (pattern.matches(*it)) {
      Message m = std::move(*it);
      pending_.erase(it);
      return m;
    }
  }
  Waiter w{pattern, sched_.current()};
  waiters_.push_back(&w);
  while (!w.filled) sched_.block(sim::Activity::communicate);
  return std::move(w.msg);
}

bool Mailbox::available(const Pattern& pattern) const {
  for (const Message& m : pending_)
    if (pattern.matches(m)) return true;
  return false;
}

}  // namespace ncs::mps
