#include "core/mps/coll_offload.hpp"

#include <utility>

#include "coll/engine.hpp"
#include "common/assert.hpp"
#include "core/mps/message.hpp"

namespace ncs::mps {

namespace {

atm::CollKind kind_of(coll::Op op) {
  switch (op) {
    case coll::Op::barrier: return atm::CollKind::barrier;
    case coll::Op::allreduce: return atm::CollKind::allreduce;
    case coll::Op::bcast: return atm::CollKind::bcast;
    default: break;
  }
  NCS_ASSERT_MSG(false, "op has no NIC-offload implementation");
  return atm::CollKind::barrier;
}

}  // namespace

NicCollPort::NicCollPort(Node& node, atm::Nic& nic, atm::NicCollParams nic_params)
    : node_(node),
      host_(node.host()),
      engine_(node.host().engine(), nic, nic_params,
              "nic-coll" + std::to_string(node.rank())),
      timeout_(Duration::microseconds(
          static_cast<double>(node.coll().params().offload_timeout_us))) {
  NCS_ASSERT_MSG(nic_params.radix == node.coll().params().offload_radix,
                 "firmware tree radix must match the selection params");
  engine_.set_completion(
      [this](std::uint64_t seq, Bytes result) { on_complete(seq, std::move(result)); });
  host_.spawn([this] { server_main(); },
              {.name = "ncs-collfetch", .priority = 1, .cls = mts::ThreadClass::system});
}

void NicCollPort::begin(std::uint64_t seq, coll::Op op, BytesView own) {
  // Retain first: peers may already be fetching this sequence, and the
  // retained copy must exist before any reply can race ahead of the NIC op.
  retained_[seq] = to_bytes(own);
  begun_ = seq + 1;
  while (retained_.size() > kRetainWindow) retained_.erase(retained_.begin());
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (it->first <= seq) {
      serve(it->second, it->first);
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
  // Lazy (re-)arm: a prior fault tore the context down with the SVC; the
  // next operation re-establishes it before contributing.
  if (!engine_.armed()) {
    engine_.program(node_.rank(), node_.n_procs());
    ++stats_.rearms;
  }
  engine_.contribute(seq, kind_of(op), to_bytes(own));
}

std::optional<Bytes> NicCollPort::await(std::uint64_t seq) {
  // Same on-demand progress pull as the blocking receives: completion
  // events only advance if something runs the planes.
  host_.progress_hint();
  if (const auto it = completed_.find(seq); it != completed_.end()) {
    Bytes r = std::move(it->second);
    completed_.erase(it);
    return r;
  }
  Waiter w{host_.current()};
  waiters_[seq] = &w;
  const sim::EventId timer = host_.engine().schedule_after(timeout_, [this, seq] {
    const auto it = waiters_.find(seq);
    if (it == waiters_.end() || it->second->filled) return;
    Waiter* stalled = it->second;
    waiters_.erase(it);
    stalled->timed_out = true;
    host_.unblock(stalled->thread);
  });
  while (!w.filled && !w.timed_out) host_.block(sim::Activity::communicate);
  if (w.timed_out) {
    ++stats_.fallbacks;
    return std::nullopt;
  }
  host_.engine().cancel(timer);
  return std::move(w.result);
}

void NicCollPort::abort(std::uint64_t seq) {
  // Drop the partial accumulation *and* condemn the context: the fault
  // that stalled this op likely took a circuit with it. The floor makes
  // any completion already in flight across the RX DMA a counted late
  // drop instead of a phantom result for a restarted operation.
  if (seq >= resolved_floor_) resolved_floor_ = seq + 1;
  engine_.abort_op(seq);
  engine_.teardown();
}

Bytes NicCollPort::fetch(std::uint64_t seq, int rank) {
  NCS_ASSERT(rank != node_.rank());
  Bytes req(8);
  ByteWriter w(req);
  w.u64(seq);
  node_.send(kCollFetchThread, kCollFetchThread, rank, req);
  const Bytes rep = node_.recv(kCollFetchReplyThread, rank, kCollFetchReplyThread);
  ByteReader r(rep);
  const std::uint64_t got = r.u64();
  NCS_ASSERT_MSG(got == seq, "fetch replies arrived out of order");
  return to_bytes(r.bytes(r.remaining()));
}

void NicCollPort::on_complete(std::uint64_t seq, Bytes result) {
  if (seq < resolved_floor_) {
    ++stats_.late_completions;
    return;
  }
  resolved_floor_ = seq + 1;  // exactly-once, even against duplicate upcalls
  const auto it = waiters_.find(seq);
  if (it == waiters_.end()) {
    completed_[seq] = std::move(result);
    return;
  }
  Waiter* w = it->second;
  waiters_.erase(it);
  w->result = std::move(result);
  w->filled = true;
  host_.unblock(w->thread);
}

void NicCollPort::server_main() {
  for (;;) {
    int src_process = -1;
    Bytes req;
    try {
      req = node_.recv(kCollFetchThread, kAnyProcess, kCollFetchThread, nullptr,
                       &src_process);
    } catch (const NcsException&) {
      // A configured recv timeout on an idle server is not an error;
      // keep serving.
      continue;
    }
    ByteReader r(req);
    const std::uint64_t seq = r.u64();
    if (seq >= begun_) {
      // The requester is falling back on an operation we have not reached:
      // park until our begin() gets there (this is what makes a fallen-back
      // barrier still wait for every rank's arrival).
      parked_.emplace(seq, src_process);
      ++stats_.fetches_parked;
      continue;
    }
    serve(src_process, seq);
  }
}

void NicCollPort::serve(int requester, std::uint64_t seq) {
  const auto it = retained_.find(seq);
  NCS_ASSERT_MSG(it != retained_.end(),
                 "fetch outside the retained contribution window");
  Bytes rep(8 + it->second.size());
  ByteWriter w(rep);
  w.u64(seq);
  w.bytes(it->second);
  node_.send(kCollFetchReplyThread, kCollFetchReplyThread, requester, rep);
  ++stats_.fetches_served;
}

void NicCollPort::register_metrics(obs::MetricsRegistry& reg,
                                   const std::string& prefix) const {
  engine_.register_metrics(reg, prefix);
  reg.counter(prefix + "/rearms", &stats_.rearms);
  reg.counter(prefix + "/fallbacks", &stats_.fallbacks);
  reg.counter(prefix + "/fetches_served", &stats_.fetches_served);
  reg.counter(prefix + "/fetches_parked", &stats_.fetches_parked);
  reg.counter(prefix + "/late_completions", &stats_.late_completions);
}

}  // namespace ncs::mps
