#include "core/mps/filters.hpp"

#include <cstring>

namespace ncs::mps {

namespace {

Bytes frame(int type, BytesView data) {
  Bytes out(4 + data.size());
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(type));
  w.bytes(data);
  return out;
}

std::pair<int, Bytes> unframe(BytesView wire) {
  ByteReader r(wire);
  const int type = static_cast<int>(r.u32());
  return {type, to_bytes(r.bytes(r.remaining()))};
}

}  // namespace

void P4Filter::send(int type, int dst, BytesView data) {
  node_.send(/*from_thread=*/0, /*to_thread=*/0, dst, frame(type, data));
}

void P4Filter::drain_available() {
  while (node_.available(kAnyThread, kAnyProcess, 0)) {
    int src_thread = 0, src_process = 0;
    const Bytes wire = node_.recv(kAnyThread, kAnyProcess, 0, &src_thread, &src_process);
    auto [type, payload] = unframe(wire);
    queue_.push_back(Entry{type, src_process, std::move(payload)});
  }
}

Bytes P4Filter::recv(int* type, int* from) {
  NCS_ASSERT(type != nullptr && from != nullptr);
  for (;;) {
    drain_available();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*type, *from, *it)) {
        *type = it->type;
        *from = it->from;
        Bytes data = std::move(it->data);
        queue_.erase(it);
        return data;
      }
    }
    // Nothing queued matches: block for the next arrival and re-check.
    int src_thread = 0, src_process = 0;
    const Bytes wire = node_.recv(kAnyThread, kAnyProcess, 0, &src_thread, &src_process);
    auto [t, payload] = unframe(wire);
    queue_.push_back(Entry{t, src_process, std::move(payload)});
  }
}

bool P4Filter::messages_available(int* type, int* from) {
  NCS_ASSERT(type != nullptr && from != nullptr);
  drain_available();
  for (const Entry& e : queue_) {
    if (matches(*type, *from, e)) {
      *type = e.type;
      *from = e.from;
      return true;
    }
  }
  return false;
}

void PvmFilter::pk_raw(Kind kind, BytesView raw) {
  const std::size_t base = tx_.size();
  tx_.resize(base + 1 + 4 + raw.size());
  ByteWriter w(std::span<std::byte>(tx_).subspan(base));
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(static_cast<std::uint32_t>(raw.size()));
  w.bytes(raw);
}

BytesView PvmFilter::upk_raw(Kind kind) {
  NCS_ASSERT_MSG(rx_pos_ + 5 <= rx_.size(), "pvm unpack past end of message");
  ByteReader r(BytesView(rx_).subspan(rx_pos_));
  const auto got = static_cast<Kind>(r.u8());
  NCS_ASSERT_MSG(got == kind, "pvm unpack type mismatch");
  const std::uint32_t len = r.u32();
  const BytesView raw = r.bytes(len);
  rx_pos_ += 5 + len;
  return raw;
}

void PvmFilter::pkint(std::span<const std::int32_t> values) {
  pk_raw(Kind::ints, BytesView(reinterpret_cast<const std::byte*>(values.data()),
                               values.size() * sizeof(std::int32_t)));
}

void PvmFilter::pkdouble(std::span<const double> values) {
  pk_raw(Kind::doubles, BytesView(reinterpret_cast<const std::byte*>(values.data()),
                                  values.size() * sizeof(double)));
}

void PvmFilter::pkbytes(BytesView data) { pk_raw(Kind::bytes, data); }

void PvmFilter::send(int tid, int tag) {
  p4_.send(tag, tid, tx_);
  tx_.clear();
}

int PvmFilter::recv(int tid, int tag, int* actual_tag) {
  int t = tag;
  int f = tid;
  rx_ = p4_.recv(&t, &f);
  rx_pos_ = 0;
  if (actual_tag != nullptr) *actual_tag = t;
  return f;
}

bool PvmFilter::probe(int tid, int tag) {
  int t = tag;
  int f = tid;
  return p4_.messages_available(&t, &f);
}

void PvmFilter::upkint(std::span<std::int32_t> out) {
  const BytesView raw = upk_raw(Kind::ints);
  NCS_ASSERT_MSG(raw.size() == out.size() * sizeof(std::int32_t), "pvm unpack length mismatch");
  std::memcpy(out.data(), raw.data(), raw.size());
}

void PvmFilter::upkdouble(std::span<double> out) {
  const BytesView raw = upk_raw(Kind::doubles);
  NCS_ASSERT_MSG(raw.size() == out.size() * sizeof(double), "pvm unpack length mismatch");
  std::memcpy(out.data(), raw.data(), raw.size());
}

Bytes PvmFilter::upkbytes() { return to_bytes(upk_raw(Kind::bytes)); }

void MpiFilter::bcast(Bytes& buffer, int root) {
  std::vector<Bytes> payloads;
  if (node_.rank() == root)
    payloads.assign(static_cast<std::size_t>(node_.n_procs()), buffer);
  buffer = node_.scatter(root, payloads);
}

void P4Filter::broadcast(int type, BytesView data) {
  std::vector<Endpoint> destinations;
  for (int p = 0; p < node_.n_procs(); ++p)
    if (p != node_.rank()) destinations.push_back(Endpoint{p, 0});
  node_.bcast(0, destinations, frame(type, data));
}

}  // namespace ncs::mps
