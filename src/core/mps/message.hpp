// NCS message: thread-addressed, per the paper's primitive signatures
//   NCS_send(from_thread, from_process, to_thread, to_process, data, size)
//   NCS_recv(from_thread, from_process, to_thread, to_process, &data, &size)
// with -1 wildcards on the receive side's source fields.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace ncs::mps {

inline constexpr int kAnyThread = -1;
inline constexpr int kAnyProcess = -1;
/// to_thread value routing a message to the control plane (flow/error
/// control threads) instead of the user mailbox.
inline constexpr int kControlThread = -2;
/// to_thread value reserved for the collective operations (gather /
/// scatter / all-to-all / reduce); keeps collective traffic from ever
/// matching an application wildcard receive.
inline constexpr int kCollectiveThread = -3;
/// to_thread value marking a protocol-engine frame (an eager batch of
/// coalesced small messages, or one rendezvous chunk). Frames carry their
/// own per-destination sequence space — they are the unit of flow-control
/// credits and of error-control ack/dedup/reorder — and are unpacked back
/// into ordinary messages by the receiving node's ProtoEngine before any
/// mailbox pattern ever sees them.
inline constexpr int kProtoThread = -4;
/// Endpoints of the NIC-offload collective fallback plane
/// (mps/coll_offload.hpp): contribution-fetch requests land on the
/// server endpoint of the serving node; replies land on the requester
/// endpoint. Reserved so fallback traffic can never match an application
/// wildcard receive or the collective plane itself.
inline constexpr int kCollFetchThread = -5;
inline constexpr int kCollFetchReplyThread = -6;

struct Endpoint {
  int process = 0;
  int thread = 0;
};

struct Message {
  int from_process = 0;
  int from_thread = 0;
  int to_process = 0;
  int to_thread = 0;
  /// Per-destination sequence number, stamped by the send thread; used by
  /// window flow control and retransmitting error control.
  std::uint32_t seq = 0;
  Bytes data;
};

/// Fixed wire header prepended to every NCS message.
inline constexpr std::size_t kHeaderBytes = 4 * 4 + 4 + 4;

inline Bytes encode(const Message& m) {
  Bytes out(kHeaderBytes + m.data.size());
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(m.from_process));
  w.u32(static_cast<std::uint32_t>(m.from_thread));
  w.u32(static_cast<std::uint32_t>(m.to_process));
  w.u32(static_cast<std::uint32_t>(m.to_thread));
  w.u32(m.seq);
  w.u32(static_cast<std::uint32_t>(m.data.size()));
  w.bytes(m.data);
  return out;
}

inline Message decode(BytesView wire) {
  ByteReader r(wire);
  Message m;
  m.from_process = static_cast<int>(r.u32());
  m.from_thread = static_cast<int>(r.u32());
  m.to_process = static_cast<int>(r.u32());
  m.to_thread = static_cast<int>(r.u32());
  m.seq = r.u32();
  const std::uint32_t len = r.u32();
  m.data = to_bytes(r.bytes(len));
  return m;
}

/// Tolerant decode for transports whose framing can be damaged by loss
/// (HSM over raw AAL5 without error control): returns nullopt when the
/// buffer cannot be a whole, consistent message.
inline std::optional<Message> try_decode(BytesView wire) {
  if (wire.size() < kHeaderBytes) return std::nullopt;
  ByteReader peek(wire);
  peek.skip(kHeaderBytes - 4);
  const std::uint32_t len = peek.u32();
  if (wire.size() != kHeaderBytes + len) return std::nullopt;
  return decode(wire);
}

/// Receive-side match pattern (paper semantics: source may be wildcarded,
/// destination identifies the receiving thread exactly).
struct Pattern {
  int from_thread = kAnyThread;
  int from_process = kAnyProcess;
  int to_thread = 0;
  int to_process = 0;

  bool matches(const Message& m) const {
    return m.to_thread == to_thread && m.to_process == to_process &&
           (from_thread == kAnyThread || m.from_thread == from_thread) &&
           (from_process == kAnyProcess || m.from_process == from_process);
  }
};

}  // namespace ncs::mps
