#include "core/mps/node.hpp"

#include <utility>

#include "coll/engine.hpp"
#include "common/assert.hpp"
#include "rma/engine.hpp"
#include "common/log.hpp"

namespace ncs::mps {

namespace {
/// Ack payload: [kCtlAck][credit flag]. Credit-bearing acks release a
/// flow-control window slot; acks for middle rendezvous chunks carry 0 —
/// the whole transfer holds one credit, returned by the final chunk's ack.
Bytes ack_payload(bool credit) {
  Bytes b(2);
  b[0] = static_cast<std::byte>(kCtlAck);
  b[1] = static_cast<std::byte>(credit ? 1 : 0);
  return b;
}

/// Profiler key for a data message — the same (from, to, seq) triple error
/// control dedups by, so it is unique per payload message. Control traffic
/// reuses seq 0 and must never be keyed this way.
obs::Profiler::MsgKey key_of(const Message& m) {
  return {m.from_process, m.to_process, m.seq};
}

/// A point strictly inside [begin, end) when the span is non-empty — where
/// flow events must land so Perfetto binds the arrow to the enclosing span.
TimePoint midpoint(TimePoint begin, TimePoint end) {
  return begin + Duration::picoseconds((end.ps() - begin.ps()) / 2);
}
}  // namespace

/// The coll::Engine's view of this node: the collective plane (reserved
/// endpoint kCollectiveThread, per-source FIFO delivery).
struct Node::CollFabric final : coll::Fabric {
  explicit CollFabric(Node& n) : node(n) {}
  int rank() const override { return node.rank_; }
  int n_procs() const override { return node.n_procs_; }
  TimePoint now() const override { return node.host_.engine().now(); }
  void send(int to, BytesView data, bool wait) override {
    node.collective_send(to, data, wait);
  }
  Bytes recv(int from) override { return node.collective_recv(from); }
  Node& node;
};

Node::~Node() = default;

void Node::set_rma(rma::Engine* engine) {
  rma_ = engine;
  if (rma_ != nullptr) {
    // Failed one-sided completions surface through the same handler as
    // two-sided delivery failures (Section 3.1's exception service).
    rma_->set_exception_hook([this](const NcsException& e) {
      ++stats_.exceptions;
      if (recorder_ != nullptr)
        recorder_->trigger(rank_, obs::FlightRecorder::EntryKind::exception,
                           host_.engine().now(), to_string(e.kind()), e.peer(),
                           e.seq());
      if (exception_handler_) exception_handler_(e.kind(), e.peer(), e.seq());
    });
  }
}

rma::Engine& Node::rma() {
  NCS_ASSERT_MSG(rma_ != nullptr, "one-sided plane not attached (enable rma in the config)");
  return *rma_;
}

Node::Node(mts::Scheduler& host, int rank, int n_procs, std::unique_ptr<Transport> transport,
           Options options)
    : host_(host),
      rank_(rank),
      n_procs_(n_procs),
      transport_(std::move(transport)),
      options_(options),
      mailbox_(host),
      submit_mutex_(host),
      send_queue_(host),
      retx_queue_(host),
      fc_(host, options.flow, n_procs),
      ec_(host.engine(), options.error, [this](Message m) { retx_queue_.push(std::move(m)); }),
      next_seq_(static_cast<std::size_t>(n_procs), 0) {
  NCS_ASSERT(transport_ != nullptr);
  NCS_ASSERT(rank >= 0 && rank < n_procs);

  coll_fabric_ = std::make_unique<CollFabric>(*this);
  coll_ = std::make_unique<coll::Engine>(*coll_fabric_, options_.coll);

  proto_ = std::make_unique<ProtoEngine>(
      host_, *transport_, fc_, ec_, options_.proto, rank_, n_procs,
      options_.local_copy_cycles_per_byte, options_.local_send_fixed_cycles,
      ProtoEngine::Hooks{
          .submit = [this](const Message& m) { submit_locked(m); },
          .submit_bulk =
              [this](const Message& m, std::size_t hint) {
                mts::LockGuard guard(submit_mutex_);
                transport_->submit_bulk(m, hint);
              },
          .deliver = [this](Message m) { deliver_from_network(std::move(m)); },
          .request_flush =
              [this](int dst) { send_queue_.push(SendRequest{Message{}, nullptr, dst}); },
          .exception =
              [this](Exception kind, int peer, std::uint32_t seq) {
                if (recorder_ != nullptr)
                  recorder_->trigger(rank_, obs::FlightRecorder::EntryKind::exception,
                                     host_.engine().now(), to_string(kind), peer, seq);
                if (exception_handler_) exception_handler_(kind, peer, seq);
              },
      });

  // System threads (paper Fig 8). High priority so protocol processing
  // preempts queued compute work at dispatch points.
  host_.spawn([this] { send_thread_main(); },
              {.name = "ncs-send", .priority = 1, .cls = mts::ThreadClass::system});
  host_.spawn([this] { recv_thread_main(); },
              {.name = "ncs-recv", .priority = 1, .cls = mts::ThreadClass::system});
  if (options_.error.kind == ErrorControlKind::retransmit) {
    host_.spawn([this] { ec_thread_main(); },
                {.name = "ncs-ec", .priority = 1, .cls = mts::ThreadClass::system});
  }

  // Exception-handling service: surface unrecoverable delivery failures to
  // the application's registered handler (paper Section 3.1). Abandoning a
  // message must also return its flow-control window credit — the ack that
  // would have released it is never coming, and a leaked credit leaves the
  // send thread stalled forever once the window fills with dead messages.
  // Protocol frames complicate the credit question: only eager frames and
  // final rendezvous chunks hold a window credit, so only those may return
  // one on abandonment (a middle chunk's credit belongs to its transfer).
  ec_.set_give_up_handler([this](const Message& m) {
    if (!ProtoEngine::is_frame(m) || ProtoEngine::frame_takes_credit(m))
      fc_.on_ack(m.to_process);
    if (recorder_ != nullptr)
      recorder_->trigger(rank_, obs::FlightRecorder::EntryKind::give_up,
                         host_.engine().now(), "ec_give_up", m.to_process, m.seq);
    if (exception_handler_)
      exception_handler_(Exception::message_timeout, m.to_process, m.seq);
  });
  transport_->set_frame_error_handler([this](int peer) {
    if (recorder_ != nullptr)
      recorder_->trigger(rank_, obs::FlightRecorder::EntryKind::exception,
                         host_.engine().now(), to_string(Exception::frame_error), peer,
                         0);
    if (exception_handler_) exception_handler_(Exception::frame_error, peer, 0);
  });
}

int Node::t_create(std::function<void()> body, int priority, std::string name) {
  const int tid = static_cast<int>(user_threads_.size());
  if (name.empty()) name = "thread" + std::to_string(tid);
  // An NcsException escaping the thread body is a clean (if failed) exit:
  // the thread terminates and the run can finish, instead of the exception
  // unwinding into the fiber trampoline and aborting the process.
  auto wrapped = [this, body = std::move(body)] {
    try {
      body();
    } catch (const NcsException& e) {
      ++stats_.threads_aborted;
      NCS_WARN("ncs", "node %d thread aborted by %s", rank_, e.what());
    }
  };
  user_threads_.push_back(host_.spawn(std::move(wrapped),
                                      {.name = std::move(name),
                                       .priority = priority,
                                       .cls = mts::ThreadClass::user}));
  return tid;
}

mts::Thread* Node::user_thread(int tid) {
  NCS_ASSERT(tid >= 0 && static_cast<std::size_t>(tid) < user_threads_.size());
  return user_threads_[static_cast<std::size_t>(tid)];
}

void Node::block() { host_.block(sim::Activity::idle); }

void Node::unblock(int tid) { host_.unblock(user_thread(tid)); }

void Node::send(int from_thread, int to_thread, int to_process, BytesView data) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "NCS_send from a foreign thread");
  NCS_ASSERT(to_process >= 0 && to_process < n_procs_);
  Message msg{rank_, from_thread, to_process, to_thread,
              next_seq_[static_cast<std::size_t>(to_process)]++, to_bytes(data)};
  ++stats_.sends;
  stats_.bytes_sent += data.size();
  if (prof_ != nullptr) prof_->on_enqueue(key_of(msg), host_.engine().now());

  // Wake the send thread and block until it completes the hand-off —
  // the paper's NCS_send semantics.
  mts::Event done(host_);
  send_queue_.push(SendRequest{std::move(msg), &done});
  done.wait();
}

Message Node::recv_matching(const Pattern& pattern) {
  try {
    return mailbox_.recv(pattern, options_.recv_timeout);
  } catch (const NcsException& e) {
    ++stats_.exceptions;
    NCS_WARN("ncs", "node %d recv raised %s", rank_, e.what());
    if (recorder_ != nullptr)
      recorder_->trigger(rank_, obs::FlightRecorder::EntryKind::exception,
                         host_.engine().now(), to_string(e.kind()), e.peer(), e.seq());
    if (exception_handler_) exception_handler_(e.kind(), e.peer(), e.seq());
    throw;
  }
}

Bytes Node::recv(int from_thread, int from_process, int to_thread, int* src_thread,
                 int* src_process) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "NCS_recv from a foreign thread");
  // On-demand progress: pull runnable protocol planes onto this core before
  // waiting, so communication advances inside the receive (MPI-style). A
  // no-op on one core or under dedicated-core progress.
  host_.progress_hint();
  const TimePoint wait_began = host_.engine().now();
  Message msg = recv_matching(Pattern{from_thread, from_process, to_thread, rank_});
  ++stats_.recvs;
  stats_.bytes_received += msg.data.size();
  if (src_thread != nullptr) *src_thread = msg.from_thread;
  if (src_process != nullptr) *src_process = msg.from_process;
  note_received(msg, wait_began);
  return std::move(msg.data);
}

void Node::note_received(const Message& msg, TimePoint wait_began) {
  const TimePoint now = host_.engine().now();
  if (trace_ != nullptr) {
    trace_->complete(recv_track_,
                     "recv p" + std::to_string(msg.from_process) + " " +
                         std::to_string(msg.data.size()) + "B",
                     "mps", wait_began, now - wait_began);
    trace_->flow_end(recv_track_, "msg", "flow", midpoint(wait_began, now),
                     obs::msg_flow_id(msg.from_process, msg.to_process, msg.seq));
  }
  if (prof_ != nullptr) prof_->on_wakeup(key_of(msg), now);
}

void Node::bcast(int from_thread, std::span<const Endpoint> destinations, BytesView data) {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "NCS_bcast from a foreign thread");
  ++stats_.bcasts;
  // Queue the whole fan-out, then wait once for the final hand-off: the
  // send thread pipelines the copies while earlier transfers drain.
  mts::Event done(host_);
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    const Endpoint& ep = destinations[i];
    NCS_ASSERT(ep.process >= 0 && ep.process < n_procs_);
    Message msg{rank_, from_thread, ep.process, ep.thread,
                next_seq_[static_cast<std::size_t>(ep.process)]++, to_bytes(data)};
    stats_.bytes_sent += data.size();
    if (prof_ != nullptr) prof_->on_enqueue(key_of(msg), host_.engine().now());
    send_queue_.push(
        SendRequest{std::move(msg), i + 1 == destinations.size() ? &done : nullptr});
  }
  if (!destinations.empty()) done.wait();
}

bool Node::available(int from_thread, int from_process, int to_thread) const {
  return mailbox_.available(Pattern{from_thread, from_process, to_thread, rank_});
}

void Node::enter_collective() {
  NCS_ASSERT_MSG(mts::Scheduler::active() == &host_, "collective from a foreign thread");
  ++stats_.collectives;
}

void Node::barrier() {
  enter_collective();
  coll_->barrier();
}

void Node::set_coll_offload(coll::OffloadPort* port) { coll_->set_offload(port); }

void Node::collective_send(int to_process, BytesView data, bool wait) {
  NCS_ASSERT(to_process >= 0 && to_process < n_procs_);
  Message msg{rank_, kCollectiveThread, to_process, kCollectiveThread,
              next_seq_[static_cast<std::size_t>(to_process)]++, to_bytes(data)};
  stats_.bytes_sent += data.size();
  if (prof_ != nullptr) prof_->on_enqueue(key_of(msg), host_.engine().now());
  if (!wait) {
    // Queued fan-out: the send system thread drains the batch while the
    // algorithm moves on (a later hand-off or receive provides the sync).
    send_queue_.push(SendRequest{std::move(msg), nullptr});
    return;
  }
  mts::Event done(host_);
  send_queue_.push(SendRequest{std::move(msg), &done});
  done.wait();
}

Bytes Node::collective_recv(int from_process) {
  // Same on-demand progress pull as NCS_recv: without it a collective
  // blocked on its peer's token under ProgressModel::on_demand leaves the
  // send/receive planes stranded on an idle core — the multi-core audit
  // found collectives were the one blocking receive path missing the hint.
  // A no-op on one core or under dedicated-core progress, so single-core
  // digests are unchanged.
  host_.progress_hint();
  const TimePoint wait_began = host_.engine().now();
  Message msg =
      recv_matching(Pattern{kCollectiveThread, from_process, kCollectiveThread, rank_});
  stats_.bytes_received += msg.data.size();
  note_received(msg, wait_began);
  return std::move(msg.data);
}

std::vector<Bytes> Node::gather(int root, BytesView contribution) {
  enter_collective();
  return coll_->gather(root, contribution);
}

Bytes Node::scatter(int root, std::span<const Bytes> payloads) {
  enter_collective();
  return coll_->scatter(root, payloads);
}

Bytes Node::bcast(int root, BytesView payload) {
  enter_collective();
  return coll_->bcast(root, payload);
}

std::vector<Bytes> Node::all_to_all(BytesView contribution) { return allgather(contribution); }

std::vector<Bytes> Node::allgather(BytesView contribution) {
  enter_collective();
  return coll_->allgather(contribution);
}

std::vector<double> Node::reduce_sum(int root, std::span<const double> values) {
  enter_collective();
  return coll_->reduce_sum(root, values);
}

std::vector<double> Node::allreduce_sum(std::span<const double> values) {
  enter_collective();
  return coll_->allreduce_sum(values);
}

std::vector<double> Node::reduce_scatter_sum(std::span<const double> values) {
  enter_collective();
  return coll_->reduce_scatter_sum(values);
}

void Node::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/sends", &stats_.sends);
  reg.counter(prefix + "/recvs", &stats_.recvs);
  reg.counter(prefix + "/bcasts", &stats_.bcasts);
  reg.counter(prefix + "/collectives", &stats_.collectives);
  reg.counter(prefix + "/bytes_sent", &stats_.bytes_sent);
  reg.counter(prefix + "/bytes_received", &stats_.bytes_received);
  reg.counter(prefix + "/acks_sent", &stats_.acks_sent);
  reg.counter(prefix + "/local_deliveries", &stats_.local_deliveries);
  reg.counter(prefix + "/exceptions", &stats_.exceptions);
  reg.counter(prefix + "/threads_aborted", &stats_.threads_aborted);
  fc_.register_metrics(reg, prefix + "/flow");
  ec_.register_metrics(reg, prefix + "/ec");
  if (proto_->enabled()) proto_->register_metrics(reg, prefix + "/proto");
}

void Node::set_trace(obs::TraceLog* trace, const std::string& prefix) {
  trace_ = trace;
  if (trace_ == nullptr) return;
  send_track_ = trace_->track(prefix + "/send");
  recv_track_ = trace_->track(prefix + "/recv");
  fc_.set_trace(trace_, send_track_);
  ec_.set_trace(trace_, send_track_);
  proto_->set_trace(trace_, send_track_, recv_track_);
}

void Node::set_profiler(obs::Profiler* prof) {
  prof_ = prof;
  fc_.set_profiler(prof);
  ec_.set_profiler(prof);
  transport_->set_profiler(prof);
  coll_->set_profiler(prof);
  proto_->set_profiler(prof);
}

void Node::submit_locked(const Message& msg) {
  mts::LockGuard guard(submit_mutex_);
  transport_->submit(msg);
}

void Node::send_thread_main() {
  for (;;) {
    SendRequest req = send_queue_.pop(sim::Activity::communicate);
    const TimePoint began = host_.engine().now();
    if (req.flush_dst >= 0) {
      // Flush-timeout marker parked by the protocol engine's timer: the
      // flush itself must run here, where blocking on flow control is
      // allowed.
      proto_->flush(req.flush_dst, ProtoEngine::FlushReason::timeout);
      continue;
    }
    if (req.msg.to_process == rank_) {
      // Intra-process delivery: shared address space, one memory copy.
      host_.charge_cycles(options_.local_send_fixed_cycles +
                              options_.local_copy_cycles_per_byte *
                                  static_cast<double>(req.msg.data.size()),
                          sim::Activity::communicate);
      ++stats_.local_deliveries;
      const TimePoint delivered = host_.engine().now();
      if (prof_ != nullptr) {
        // No flow control or network leg locally: the copy is the whole
        // transport stage, and delivery coincides with the hand-off.
        const obs::Profiler::MsgKey k = key_of(req.msg);
        prof_->on_dequeue(k, began);
        prof_->on_admit(k, began);
        prof_->on_handoff(k, delivered);
        prof_->on_deliver(k, delivered);
      }
      if (trace_ != nullptr) {
        trace_->complete(send_track_, "local " + std::to_string(req.msg.data.size()) + "B",
                         "mps", began, delivered - began);
        trace_->flow_start(send_track_, "msg", "flow", midpoint(began, delivered),
                           obs::msg_flow_id(req.msg.from_process, req.msg.to_process,
                                            req.msg.seq));
      }
      mailbox_.deliver(std::move(req.msg));
      if (req.done != nullptr) req.done->set();
      continue;
    }
    const bool is_control = req.msg.to_thread == kControlThread;
    if (prof_ != nullptr && !is_control) prof_->on_dequeue(key_of(req.msg), began);
    if (!is_control && proto_->enabled()) {
      if (proto_->use_rendezvous(req.msg.data.size())) {
        proto_->rendezvous(req.msg);
      } else {
        proto_->eager_enqueue(std::move(req.msg));
      }
      // Eager completion is buffered-send: the caller resumes as soon as
      // its payload is in the batch. Rendezvous kept it blocked through
      // the whole transfer (NCS_send semantics for bulk data).
      if (req.done != nullptr) req.done->set();
      // No more sends queued behind this one: flush the half-full batches
      // rather than sit on them until the timeout.
      if (send_queue_.empty() && proto_->params().flush_on_idle && proto_->has_pending())
        proto_->flush_all(ProtoEngine::FlushReason::idle);
      continue;
    }
    if (!is_control) {
      fc_.before_send(req.msg);
      if (prof_ != nullptr) prof_->on_admit(key_of(req.msg), host_.engine().now());
    }
    submit_locked(req.msg);
    if (!is_control) ec_.on_sent(req.msg);
    if (!is_control) {
      const TimePoint ended = host_.engine().now();
      if (prof_ != nullptr) prof_->on_handoff(key_of(req.msg), ended);
      if (trace_ != nullptr) {
        trace_->complete(send_track_,
                         "send->p" + std::to_string(req.msg.to_process) + " " +
                             std::to_string(req.msg.data.size()) + "B",
                         "mps", began, ended - began);
        trace_->flow_start(send_track_, "msg", "flow", midpoint(began, ended),
                           obs::msg_flow_id(req.msg.from_process, req.msg.to_process,
                                            req.msg.seq));
      }
    }
    if (req.done != nullptr) req.done->set();
  }
}

void Node::recv_thread_main() {
  for (;;) {
    Message msg = transport_->recv_next();
    NCS_ASSERT(msg.to_process == rank_);
    if (msg.to_thread == kControlThread) {
      handle_control(msg);
      continue;
    }
    // Every arrival is acked (duplicates too — the original ack may have
    // been lost; held out-of-order messages are received, just not yet
    // deliverable), then the error-control policy decides what the
    // application may see and in what order.
    const bool need_ack = fc_.wants_acks() || ec_.wants_acks();
    if (ProtoEngine::is_frame(msg)) {
      // Frames are the ack/dedup/reorder unit; the engine unpacks the
      // in-order survivors back into application messages.
      if (need_ack) send_ack_for(msg, ProtoEngine::frame_takes_credit(msg));
      for (Message& f : ec_.accept(std::move(msg))) proto_->rx_frame(std::move(f));
      continue;
    }
    if (need_ack) send_ack_for(msg, true);
    for (Message& m : ec_.accept(std::move(msg))) deliver_from_network(std::move(m));
  }
}

void Node::deliver_from_network(Message msg) {
  if (trace_ != nullptr)
    trace_->instant(recv_track_,
                    "deliver p" + std::to_string(msg.from_process) + " " +
                        std::to_string(msg.data.size()) + "B",
                    "mps", host_.engine().now());
  if (prof_ != nullptr) prof_->on_deliver(key_of(msg), host_.engine().now());
  mailbox_.deliver(std::move(msg));
}

void Node::ec_thread_main() {
  for (;;) {
    Message msg = retx_queue_.pop(sim::Activity::communicate);
    NCS_DEBUG("ncs.ec", "node %d retransmitting seq %u to %d", rank_, msg.seq, msg.to_process);
    submit_locked(msg);
    ec_.on_sent(msg);
  }
}

void Node::send_ack_for(const Message& msg, bool credit) {
  Message ack{rank_, kControlThread, msg.from_process, kControlThread, msg.seq,
              ack_payload(credit)};
  ++stats_.acks_sent;
  // Sent directly from the receive thread: routing acks through the send
  // queue would deadlock when the send thread itself is blocked waiting
  // for window credit.
  submit_locked(ack);
}

void Node::handle_control(const Message& msg) {
  NCS_ASSERT(!msg.data.empty());
  switch (static_cast<std::uint8_t>(msg.data[0])) {
    case kCtlAck: {
      // Legacy single-byte acks (no flag) always carried a credit.
      const bool credit =
          msg.data.size() < 2 || static_cast<std::uint8_t>(msg.data[1]) != 0;
      if (credit) fc_.on_ack(msg.from_process);
      ec_.on_ack(msg.from_process, msg.seq);
      break;
    }
    case kCtlRts: proto_->on_rts(msg); break;
    case kCtlCts: proto_->on_cts(msg); break;
    default:
      NCS_UNREACHABLE("unknown NCS control message kind");
  }
}

}  // namespace ncs::mps
