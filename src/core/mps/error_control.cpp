#include "core/mps/error_control.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace ncs::mps {

const char* to_string(ErrorControlKind k) {
  switch (k) {
    case ErrorControlKind::none: return "none";
    case ErrorControlKind::retransmit: return "retransmit";
  }
  return "?";
}

ErrorControl::ErrorControl(sim::Engine& engine, ErrorControlParams params,
                           std::function<void(Message)> retransmit_fn)
    : engine_(engine), params_(params), retransmit_fn_(std::move(retransmit_fn)) {
  NCS_ASSERT(params_.kind == ErrorControlKind::none || retransmit_fn_ != nullptr);
}

void ErrorControl::on_sent(const Message& msg) {
  if (params_.kind != ErrorControlKind::retransmit) return;
  const Key key{msg.to_process, msg.seq};
  auto it = in_flight_.find(key);
  if (it == in_flight_.end()) {
    it = in_flight_.emplace(key, InFlight{msg, 0, 0, engine_.now()}).first;
  } else {
    ++it->second.attempts;  // this was a retransmission completing
  }
  arm_timer(key);
}

void ErrorControl::arm_timer(const Key& key) {
  InFlight& f = in_flight_.at(key);
  if (f.timer != 0) engine_.cancel(f.timer);
  f.timer = engine_.schedule_after(params_.rto, [this, key] {
    auto it = in_flight_.find(key);
    if (it == in_flight_.end()) return;
    it->second.timer = 0;
    if (it->second.attempts >= params_.max_retries) {
      ++stats_.give_ups;
      NCS_WARN("ncs.ec", "giving up on msg seq %u to %d after %d attempts", key.seq, key.peer,
               it->second.attempts);
      if (trace_ != nullptr)
        trace_->instant(trace_track_,
                        "give-up seq" + std::to_string(key.seq) + "->p" +
                            std::to_string(key.peer),
                        "mps", engine_.now());
      Message failed = std::move(it->second.msg);
      in_flight_.erase(it);
      if (give_up_handler_) give_up_handler_(failed);
      return;
    }
    ++stats_.retransmits;
    if (trace_ != nullptr)
      trace_->instant(trace_track_,
                      "retx seq" + std::to_string(key.seq) + "->p" + std::to_string(key.peer),
                      "mps", engine_.now());
    if (prof_ != nullptr)
      prof_->record(obs::Layer::retx_delay, engine_.now() - it->second.first_sent);
    retransmit_fn_(it->second.msg);
  });
}

void ErrorControl::on_ack(int from_process, std::uint32_t seq) {
  if (params_.kind != ErrorControlKind::retransmit) return;
  const auto it = in_flight_.find(Key{from_process, seq});
  if (it == in_flight_.end()) return;  // late ack for a retired message
  if (it->second.timer != 0) engine_.cancel(it->second.timer);
  in_flight_.erase(it);
}

void ErrorControl::register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
  reg.counter(prefix + "/retransmits", &stats_.retransmits);
  reg.counter(prefix + "/duplicates_dropped", &stats_.duplicates_dropped);
  reg.counter(prefix + "/give_ups", &stats_.give_ups);
  reg.counter(prefix + "/reorders", &stats_.reorders);
}

std::vector<Message> ErrorControl::accept(Message msg) {
  std::vector<Message> ready;
  if (params_.kind != ErrorControlKind::retransmit) {
    ready.push_back(std::move(msg));
    return ready;
  }
  SeenState& st = seen_[msg.from_process];
  if (msg.seq < st.low || st.held.contains(msg.seq)) {
    ++stats_.duplicates_dropped;
    return ready;
  }
  if (msg.seq != st.low) ++stats_.reorders;
  st.held.emplace(msg.seq, std::move(msg));
  // Release the contiguous run. A gap (a loss awaiting retransmission)
  // holds back its successors so applications never observe reordering.
  while (!st.held.empty() && st.held.begin()->first == st.low) {
    ready.push_back(std::move(st.held.begin()->second));
    st.held.erase(st.held.begin());
    ++st.low;
  }
  return ready;
}

}  // namespace ncs::mps
