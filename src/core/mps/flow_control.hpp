// Flow-control policies — the paper's Fig 5 QOS argument.
//
// NCS_init(flow, error) lets each application pick the policy that fits
// its QOS class: a parallel/distributed application wants window-based
// backpressure (bound the unacknowledged backlog per destination), a
// Video-on-Demand stream wants rate pacing (smooth the injection rate and
// never stall on acknowledgements), and the paper's *evaluated*
// configuration delegates to p4 — i.e. `none` at the NCS level.
//
// before_send() runs in the send system thread and may block it; credits
// return via control acknowledgements handled by the receive thread.
#pragma once

#include <list>
#include <vector>

#include "core/mps/message.hpp"
#include "core/mts/sync.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace ncs::mps {

enum class FlowControlKind { none, window, rate };

const char* to_string(FlowControlKind k);

struct FlowControlParams {
  FlowControlKind kind = FlowControlKind::none;
  /// window: maximum unacknowledged messages per destination.
  int window = 8;
  /// rate: sustained injection rate (payload bytes per second).
  double rate_bytes_per_sec = 4e6;
};

class FlowControl {
 public:
  FlowControl(mts::Scheduler& sched, FlowControlParams params, int n_procs);

  /// Acknowledgement traffic is only generated when a policy consumes it.
  bool wants_acks() const { return params_.kind == FlowControlKind::window; }

  /// Send-thread context; blocks until policy admits the message.
  void before_send(const Message& msg);

  /// Receive-thread context: credit returned by an ack from `from_process`.
  void on_ack(int from_process);

  struct Stats {
    std::uint64_t window_stalls = 0;
    std::uint64_t rate_delays = 0;
    Duration time_blocked;
  };
  const Stats& stats() const { return stats_; }

  /// Unacknowledged in-window messages towards `dst` (0 unless the window
  /// policy is active). Exposed for tests and the bottleneck report.
  int outstanding(int dst) const {
    return dst < static_cast<int>(outstanding_.size())
               ? outstanding_[static_cast<std::size_t>(dst)]
               : 0;
  }

  /// Window occupancy summed over every destination — the telemetry
  /// queue-depth probe for this node's flow-control plane.
  int total_outstanding() const {
    int n = 0;
    for (int o : outstanding_) n += o;
    return n;
  }

  /// Registers the policy's counters under `prefix` (e.g. "p0/mps/flow").
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

  /// Stall spans are emitted onto `track` of `trace` (nullptr disables).
  void set_trace(obs::TraceLog* trace, int track) {
    trace_ = trace;
    trace_track_ = track;
  }

  /// Blocked spans (window stalls, rate pacing) feed Layer::fc_stall.
  void set_profiler(obs::Profiler* prof) { prof_ = prof; }

 private:
  mts::Scheduler& sched_;
  FlowControlParams params_;
  obs::TraceLog* trace_ = nullptr;
  int trace_track_ = -1;
  obs::Profiler* prof_ = nullptr;

  // window state. Waiters are kept per destination: windows are
  // per-destination, so an ack from B must never wake (only) a thread
  // stalled on A while B's waiter sleeps on.
  //
  // Each stalled sender enqueues exactly ONE entry for the whole stall and
  // erases it itself on admission (std::list: stable references, O(1)
  // self-erase). `signaled` marks the entry whose wakeup an ack already
  // paid for; on_ack never hands two wakeups to one credit and never pops
  // an entry on the waiter's behalf — the old pop-on-ack scheme combined
  // with re-pushing every loop iteration let a later (duplicate) ack wake
  // a thread whose admission had already happened.
  struct WindowWaiter {
    mts::Thread* thread;
    bool signaled = false;
  };
  std::vector<int> outstanding_;
  std::vector<std::list<WindowWaiter>> window_waiters_;

  // rate state (token-bucket horizon)
  TimePoint next_free_;

  Stats stats_;
};

}  // namespace ncs::mps
