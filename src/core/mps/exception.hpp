// Typed NCS exceptions — the paper's fourth service class (Section 3.1)
// made concrete: when the runtime declares a delivery failure, blocked NCS
// calls raise a typed exception into the application thread instead of
// hanging it. Handlers registered with Node::set_exception_handler still
// see every event; the thrown exception is what lets a thread (and so a
// whole run) terminate cleanly under unrecoverable faults.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ncs::mps {

enum class NcsExceptionKind : std::uint8_t {
  message_timeout,  // sender side: error control exhausted its retries
  frame_error,      // transport delivered a garbled frame (loss, no EC)
  recv_timeout,     // receiver side: no matching message within the deadline
};

inline const char* to_string(NcsExceptionKind k) {
  switch (k) {
    case NcsExceptionKind::message_timeout: return "message_timeout";
    case NcsExceptionKind::frame_error: return "frame_error";
    case NcsExceptionKind::recv_timeout: return "recv_timeout";
  }
  return "?";
}

class NcsException : public std::runtime_error {
 public:
  NcsException(NcsExceptionKind kind, int peer, std::uint32_t seq)
      : std::runtime_error(std::string("NCS exception: ") + to_string(kind) +
                           " (peer " + std::to_string(peer) + ", seq " +
                           std::to_string(seq) + ")"),
        kind_(kind),
        peer_(peer),
        seq_(seq) {}

  NcsExceptionKind kind() const { return kind_; }
  /// Peer process index, or a wildcard (< 0) when unknown.
  int peer() const { return peer_; }
  std::uint32_t seq() const { return seq_; }

 private:
  NcsExceptionKind kind_;
  int peer_;
  std::uint32_t seq_;
};

}  // namespace ncs::mps
