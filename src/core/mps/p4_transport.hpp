// Approach 1: NCS_MPS over p4 (the configuration the paper benchmarks).
//
// NCS messages travel as p4 messages of a reserved type; p4's blocking
// calls block only the green thread that issues them — which is the NCS
// send or receive *system* thread, never the whole process. That one
// sentence is the paper's Section 4.2.
#pragma once

#include "core/mps/transport.hpp"
#include "p4/p4.hpp"

namespace ncs::mps {

/// p4 message type reserved for NCS traffic (stays below p4's own
/// internal-type space so p4 applications can coexist).
inline constexpr int kNcsP4Type = (1 << 29) + 7;

class P4Transport final : public Transport {
 public:
  explicit P4Transport(p4::Process& proc) : proc_(proc) {}

  void submit(const Message& msg) override {
    proc_.send(kNcsP4Type, msg.to_process, encode(msg));
  }

  Message recv_next() override {
    int type = kNcsP4Type;
    int from = p4::kAnyProc;
    Bytes wire = proc_.recv(&type, &from);
    Message msg = decode(wire);
    NCS_ASSERT(msg.from_process == from);
    return msg;
  }

  const char* name() const override { return "NSM/p4"; }

 private:
  p4::Process& proc_;
};

}  // namespace ncs::mps
