// Approach 1: NCS_MPS over p4 (the configuration the paper benchmarks).
//
// NCS messages travel as p4 messages of a reserved type; p4's blocking
// calls block only the green thread that issues them — which is the NCS
// send or receive *system* thread, never the whole process. That one
// sentence is the paper's Section 4.2.
#pragma once

#include "core/mps/transport.hpp"
#include "p4/p4.hpp"

namespace ncs::mps {

/// p4 message type reserved for NCS traffic (stays below p4's own
/// internal-type space so p4 applications can coexist).
inline constexpr int kNcsP4Type = (1 << 29) + 7;

class P4Transport final : public Transport {
 public:
  explicit P4Transport(p4::Process& proc) : proc_(proc) {}

  void submit(const Message& msg) override {
    proc_.send(kNcsP4Type, msg.to_process, encode(msg));
  }

  Message recv_next() override {
    int type = kNcsP4Type;
    int from = p4::kAnyProc;
    Bytes wire = proc_.recv(&type, &from);
    Message msg = decode(wire);
    NCS_ASSERT(msg.from_process == from);
    return msg;
  }

  const char* name() const override { return "NSM/p4"; }

  CostHints cost_hints() const override {
    // The p4 path's cost shape from the standard model (p4 does not expose
    // its runtime's calibrated instance; the presets use the defaults, and
    // the protocol engine only needs the order of magnitude to seed its
    // crossover before measurements refine it). Per message: syscall entry,
    // p4 bookkeeping, one TCP segment. Per byte: the 4-accesses/word socket
    // copy plus p4's XDR conversion.
    const proto::CostModel costs;
    CostHints h;
    h.per_message = proc_.host().cycles(costs.syscall_cycles + costs.p4_per_message_cycles +
                                        costs.tcp_per_segment_cycles);
    const double cycles_per_byte = costs.tcp_accesses_per_word / costs.word_bytes *
                                       costs.cycles_per_bus_access +
                                   costs.p4_per_byte_cycles;
    h.bytes_per_sec = proc_.host().params().cpu_mhz * 1e6 / cycles_per_byte;
    return h;  // dma_window 0: no NIC staging structure on the socket path
  }

 private:
  p4::Process& proc_;
};

}  // namespace ncs::mps
