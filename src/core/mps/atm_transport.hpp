// Approach 2: NCS_MPS directly on the ATM API — the HSM tier.
//
// The send thread traps into the kernel (cheap — no full syscall), copies
// each chunk into a kernel buffer that is mmap'ed into NCS's address space
// (2 CPU bus accesses per word instead of the socket path's 4), and hands
// it to one of the NIC's multiple I/O buffers. While the adapter DMAs and
// segments buffer k, the send thread is already copying into buffer k+1 —
// the paper's Fig 2 "parallel data transfer" emerges from the buffer
// backpressure, it is not separately modeled.
//
// The receive thread mirrors it: the NIC upcall queues chunks; the thread
// charges the trap + copy per chunk and reassembles messages (chunks of a
// given source arrive in order on its PVC).
#pragma once

#include <map>

#include "atm/network.hpp"
#include "atm/signaling.hpp"
#include "core/mps/transport.hpp"
#include "core/mts/sync.hpp"
#include "proto/costs.hpp"

namespace ncs::mps {

class AtmTransport final : public Transport {
 public:
  struct Params {
    /// Bytes copied per trap — one NIC I/O buffer's worth.
    std::size_t chunk_size = 4096;
    proto::CostModel costs;
    /// When set, destinations are reached over switched virtual circuits
    /// opened on demand through this signaling agent (first send to a peer
    /// blocks for the call setup handshake) instead of the static PVC
    /// mesh. The agent must belong to the same host's NIC. Network-side
    /// releases (port failures) invalidate the cached circuit; the next
    /// send re-signals.
    atm::SignalingAgent* signaling = nullptr;
    /// Rejected call setups are retried after a backoff (a transiently
    /// failed port heals); past the limit the transport aborts the run.
    int svc_retry_limit = 8;
    Duration svc_retry_backoff = Duration::milliseconds(10);
  };

  AtmTransport(mts::Scheduler& host, atm::Nic& nic, Params params);

  void submit(const Message& msg) override;
  /// Rendezvous bulk path: copies up to a whole I/O buffer per trap
  /// (clamped to [chunk_size, io_buffer_size]) so a large transfer pays
  /// the trap + bookkeeping cost once per buffer instead of once per
  /// small-message chunk, and each copy fills the buffer the adapter is
  /// about to DMA — the Fig 2 multi-buffer overlap at full granularity.
  void submit_bulk(const Message& msg, std::size_t chunk_hint) override;
  Message recv_next() override;
  CostHints cost_hints() const override;
  const char* name() const override { return "HSM/ATM"; }
  void set_frame_error_handler(std::function<void(int)> handler) override {
    frame_error_handler_ = std::move(handler);
  }
  /// Records NIC I/O-buffer backpressure stalls into Layer::tx_buffer_stall.
  void set_profiler(obs::Profiler* prof) override { prof_ = prof; }

  struct Stats {
    std::uint64_t tx_chunks = 0;
    std::uint64_t rx_chunks = 0;
    std::uint64_t tx_buffer_stalls = 0;
    std::uint64_t rx_frame_errors = 0;  // garbled reassemblies (loss, no EC)
    std::uint64_t svc_calls_opened = 0;
    std::uint64_t svc_invalidations = 0;  // cached circuits lost to releases
    std::uint64_t svc_retries = 0;        // setups retried after rejection
  };
  const Stats& stats() const { return stats_; }

 private:
  void wait_for_tx_buffer();
  /// Transmit label towards `to_process` (PVC label, or an SVC opened on
  /// first use — which blocks the calling thread for the handshake).
  atm::VcId vc_towards(int to_process);

  mts::Scheduler& host_;
  atm::Nic& nic_;
  Params params_;

  struct RxChunk {
    atm::VcId vc;
    Bytes data;
    bool end_of_message;
  };
  mts::Channel<RxChunk> rx_;
  std::map<atm::VcId, Bytes> partial_;  // per-circuit reassembly
  std::map<int, atm::VcId> svc_to_;     // destination -> established SVC
  std::function<void(int)> frame_error_handler_;
  obs::Profiler* prof_ = nullptr;

  Stats stats_;
};

}  // namespace ncs::mps
