#include "net/link.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ncs::net {

Link::Link(sim::Engine& engine, LinkParams params, std::string name)
    : engine_(engine), params_(params), name_(std::move(name)) {
  NCS_ASSERT(params_.bandwidth_bps > 0);
  NCS_ASSERT(params_.loss_probability >= 0.0 && params_.loss_probability <= 1.0);
  // The legacy loss knob is sugar for a uniform fault-state component with
  // the link's own seed — same stream and draw order as before fault/.
  fault_.configure_uniform(params_.loss_probability, params_.loss_seed);
}

void Link::transmit(std::size_t wire_bytes, sim::EventFn on_sent, sim::EventFn on_delivered) {
  const TimePoint start = ncs::max(engine_.now(), busy_until_);
  const TimePoint sent = start + tx_time(wire_bytes);
  busy_until_ = sent;
  ++stats_.frames;
  stats_.bytes += wire_bytes;

  if (on_sent) engine_.schedule_at(sent, std::move(on_sent));

  // One verdict per frame: down-window, burst chain, then the uniform
  // draw. The frame still occupies the wire (a downed link's sender only
  // learns from the missing ack, exactly like a real cut fiber).
  if (fault_.should_drop()) {
    ++stats_.drops;
    return;
  }
  if (on_delivered) engine_.schedule_at(sent + params_.propagation, std::move(on_delivered));
}

}  // namespace ncs::net
