#include "net/link.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ncs::net {

Link::Link(sim::Engine& engine, LinkParams params, std::string name)
    : engine_(engine), params_(params), name_(std::move(name)), loss_rng_(params.loss_seed) {
  NCS_ASSERT(params_.bandwidth_bps > 0);
  NCS_ASSERT(params_.loss_probability >= 0.0 && params_.loss_probability <= 1.0);
}

void Link::transmit(std::size_t wire_bytes, sim::EventFn on_sent, sim::EventFn on_delivered) {
  const TimePoint start = ncs::max(engine_.now(), busy_until_);
  const TimePoint sent = start + tx_time(wire_bytes);
  busy_until_ = sent;
  ++stats_.frames;
  stats_.bytes += wire_bytes;

  if (on_sent) engine_.schedule_at(sent, std::move(on_sent));

  const bool lost =
      params_.loss_probability > 0.0 && loss_rng_.next_bool(params_.loss_probability);
  if (lost) {
    ++stats_.drops;
    return;
  }
  if (on_delivered) engine_.schedule_at(sent + params_.propagation, std::move(on_delivered));
}

}  // namespace ncs::net
