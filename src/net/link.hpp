// Point-to-point unidirectional link.
//
// Models the three quantities that matter to every 1995 network in the
// paper: serialization (one frame on the wire at a time, at a fixed bit
// rate), propagation delay (the WAN term the paper's overlap argument is
// built on), and per-frame fixed overhead (preamble/IFG for Ethernet,
// nothing for ATM where framing is counted in cell bytes). Optional
// deterministic loss injection feeds the error-control ablations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/time.hpp"
#include "fault/faults.hpp"
#include "sim/engine.hpp"

namespace ncs::net {

struct LinkParams {
  double bandwidth_bps = 10e6;
  Duration propagation = Duration::microseconds(5);
  /// Charged once per transmit() in addition to the payload serialization
  /// time (e.g. Ethernet preamble + inter-frame gap).
  Duration per_frame_overhead = Duration::zero();
  /// Probability that a frame is dropped after occupying the wire.
  double loss_probability = 0.0;
  std::uint64_t loss_seed = 0x10ADBA5E;
};

class Link {
 public:
  Link(sim::Engine& engine, LinkParams params, std::string name = "link");

  /// Queues `wire_bytes` for transmission. The link serializes frames in
  /// FIFO order. `on_sent` fires when the last bit leaves the sender (the
  /// point at which a sending NIC buffer frees); `on_delivered` fires one
  /// propagation delay later at the receiver — unless the frame is lost,
  /// in which case only `on_sent` fires. Either callback may be null.
  void transmit(std::size_t wire_bytes, sim::EventFn on_sent, sim::EventFn on_delivered);

  /// Time at which the wire becomes free given everything queued so far.
  TimePoint busy_until() const { return busy_until_; }

  /// Serialization time for `wire_bytes` on this link (no queueing).
  Duration tx_time(std::size_t wire_bytes) const {
    return params_.per_frame_overhead +
           Duration::for_bytes(static_cast<std::int64_t>(wire_bytes), params_.bandwidth_bps);
  }

  const LinkParams& params() const { return params_; }
  const std::string& name() const { return name_; }

  /// Fault state consulted once per frame. `loss_probability` is carried
  /// here as the uniform component; the FaultInjector layers down-windows
  /// and burst loss on top (register via FaultInjector::attach_link).
  fault::LinkFault& fault() { return fault_; }

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  sim::Engine& engine_;
  LinkParams params_;
  std::string name_;
  TimePoint busy_until_;
  fault::LinkFault fault_;
  Stats stats_;
};

/// Convenience: a full-duplex pair of identical links.
class DuplexLink {
 public:
  DuplexLink(sim::Engine& engine, const LinkParams& params, const std::string& name = "link")
      : forward_(engine, params, name + ">"), backward_(engine, params, name + "<") {}

  Link& forward() { return forward_; }
  Link& backward() { return backward_; }

 private:
  Link forward_;
  Link backward_;
};

}  // namespace ncs::net
