// Grayscale continuous-tone images for the JPEG pipeline (Section 5.2).
//
// The paper compresses a 600 KB image; no trace of it survives, so the
// generator below synthesizes deterministic continuous-tone content
// (smooth gradients + low-frequency texture + mild noise) whose block
// statistics behave like photographic material — which is all that the
// pipeline's stage costs and compression ratios depend on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace ncs::apps {

struct Image {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  // row-major, 1 byte per pixel

  std::size_t size_bytes() const { return pixels.size(); }
  std::uint8_t at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }

  /// Horizontal strip [row_begin, row_end).
  Image strip(int row_begin, int row_end) const;
};

/// Synthetic continuous-tone test image.
Image make_test_image(int width, int height, std::uint64_t seed);

/// Peak signal-to-noise ratio in dB (identical images -> +inf).
double psnr(const Image& a, const Image& b);

Bytes pack_image(const Image& img);
Image unpack_image(BytesView data);

}  // namespace ncs::apps
