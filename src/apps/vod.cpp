#include "apps/vod.hpp"

#include <algorithm>

#include "apps/jpeg/codec.hpp"
#include "common/assert.hpp"

namespace ncs::apps::vod {

Image FrameSource::reference_frame(int index) const {
  // The scene drifts: each frame uses a phase-shifted seed so consecutive
  // frames differ but remain continuous-tone.
  return make_test_image(params_.width, params_.height,
                         params_.seed + static_cast<std::uint64_t>(index) * 7919);
}

Bytes FrameSource::next_frame() {
  if (produced_ >= params_.frame_count) return {};
  const Image frame = reference_frame(produced_);
  ++produced_;
  return jpeg::compress(frame, {.quality = params_.quality});
}

Image FrameSource::decode_frame(BytesView frame) { return jpeg::decompress(frame); }

void JitterBuffer::on_arrival(TimePoint now, std::size_t frame_bytes) {
  NCS_ASSERT_MSG(arrivals_.empty() || now >= arrivals_.back(),
                 "arrivals must be reported in order");
  arrivals_.push_back(now);
  bytes_ += frame_bytes;
}

JitterBuffer::Report JitterBuffer::report() const {
  Report r;
  r.frames = static_cast<int>(arrivals_.size());
  r.bytes = bytes_;
  if (arrivals_.empty()) return r;

  const TimePoint start = arrivals_.front() + prebuffer_;
  const Duration tick = Duration::seconds(1.0 / fps_);
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    const TimePoint deadline = start + tick * static_cast<std::int64_t>(i);
    if (arrivals_[i] > deadline) {
      ++r.underruns;
      r.worst_lateness = ncs::max(r.worst_lateness, arrivals_[i] - deadline);
    }
    // Depth at arrival i: frames arrived minus frames already played out.
    const double played =
        arrivals_[i] <= start ? 0.0 : (arrivals_[i] - start).sec() * fps_;
    const int depth = static_cast<int>(i + 1) - static_cast<int>(played);
    r.max_depth = std::max(r.max_depth, depth);
  }
  return r;
}

}  // namespace ncs::apps::vod
