#include "apps/fft.hpp"

#include <cmath>
#include <cstring>
#include <numbers>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ncs::apps::fft {

bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

int log2_exact(std::size_t v) {
  NCS_ASSERT(is_power_of_two(v));
  int bits = 0;
  while ((std::size_t{1} << bits) < v) ++bits;
  return bits;
}

std::size_t bit_reverse(std::size_t value, int bits) {
  std::size_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | (value & 1);
    value >>= 1;
  }
  return out;
}

Complex twiddle(std::size_t e, std::size_t m) {
  const double angle = -2.0 * std::numbers::pi * static_cast<double>(e) / static_cast<double>(m);
  return Complex(std::cos(angle), std::sin(angle));
}

std::vector<Complex> dft_reference(std::span<const Complex> input) {
  const std::size_t m = input.size();
  std::vector<Complex> out(m);
  for (std::size_t i = 0; i < m; ++i) {
    Complex acc(0, 0);
    for (std::size_t k = 0; k < m; ++k) acc += input[k] * twiddle(i * k % m, m);
    out[i] = acc;
  }
  return out;
}

namespace {

/// In-place DIF stages from distance `top` down to 1; `m` is the full
/// transform size that the twiddle exponents refer to.
void dif_stages(std::span<Complex> data, std::size_t m, std::size_t top) {
  for (std::size_t h = top; h >= 1; h >>= 1) {
    const std::size_t stride = m / (2 * h);  // twiddle exponent step
    for (std::size_t block = 0; block < data.size(); block += 2 * h) {
      for (std::size_t i = 0; i < h; ++i) {
        const Complex u = data[block + i];
        const Complex v = data[block + i + h];
        data[block + i] = u + v;
        data[block + i + h] = (u - v) * twiddle(i * stride % m, m);
      }
    }
  }
}

}  // namespace

std::vector<Complex> fft(std::vector<Complex> input) {
  const std::size_t m = input.size();
  NCS_ASSERT(is_power_of_two(m));
  if (m == 1) return input;
  dif_stages(input, m, m / 2);
  return assemble(input);
}

std::vector<Complex> make_samples(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> s(m);
  const double f1 = 3.0, f2 = 17.0;
  for (std::size_t k = 0; k < m; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(m);
    const double tone = std::sin(2.0 * std::numbers::pi * f1 * t) +
                        0.5 * std::cos(2.0 * std::numbers::pi * f2 * t);
    s[k] = Complex(tone + 0.1 * (rng.next_double() - 0.5),
                   0.05 * (rng.next_double() - 0.5));
  }
  return s;
}

void global_stage(std::span<const Complex> a, std::span<const Complex> b,
                  std::span<Complex> x, std::span<Complex> y, int thread_num, int step,
                  std::size_t m, std::size_t n_threads) {
  const std::size_t r = m / (2 * n_threads);
  NCS_ASSERT(a.size() == r && b.size() == r && x.size() == r && y.size() == r);
  const std::size_t half = m / 2;
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t k =
        (static_cast<std::size_t>(thread_num) * r + i) * (std::size_t{1} << step) % half;
    x[i] = a[i] + b[i];
    y[i] = (a[i] - b[i]) * twiddle(k, m);
  }
}

void local_phase(std::span<Complex> data, std::size_t m) {
  NCS_ASSERT(is_power_of_two(data.size()));
  if (data.size() < 2) return;
  dif_stages(data, m, data.size() / 2);
}

std::vector<Complex> assemble(std::span<const Complex> concatenated) {
  const std::size_t m = concatenated.size();
  const int bits = log2_exact(m);
  std::vector<Complex> out(m);
  for (std::size_t i = 0; i < m; ++i) out[i] = concatenated[bit_reverse(i, bits)];
  return out;
}

bool approx_equal(std::span<const Complex> a, std::span<const Complex> b, double tolerance) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tolerance) return false;
  return true;
}

Bytes pack(std::span<const Complex> values) {
  Bytes out(values.size() * sizeof(Complex));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<Complex> unpack(BytesView data) {
  NCS_ASSERT(data.size() % sizeof(Complex) == 0);
  std::vector<Complex> out(data.size() / sizeof(Complex));
  std::memcpy(out.data(), data.data(), data.size());
  return out;
}

}  // namespace ncs::apps::fft
