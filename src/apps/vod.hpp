// Video-on-Demand application components (the HPCC application class the
// paper's introduction and Fig 5 are motivated by).
//
// FrameSource synthesizes a deterministic moving scene and compresses each
// frame with the JPEG codec — so VOD traffic has realistic, varying frame
// sizes. JitterBuffer models the client player: frames arrive with network
// timing, playout ticks at the stream's rate after a prebuffer, and the
// report says whether the stream was watchable (underruns) and how much
// buffering it needed.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/image.hpp"
#include "common/time.hpp"

namespace ncs::apps::vod {

struct VideoParams {
  int width = 320;
  int height = 240;
  int fps = 24;
  int frame_count = 48;
  int quality = 60;
  std::uint64_t seed = 99;
};

/// Deterministic synthetic video: a test-pattern scene whose phase advances
/// per frame, compressed frame-by-frame.
class FrameSource {
 public:
  explicit FrameSource(VideoParams params) : params_(params) {}

  const VideoParams& params() const { return params_; }
  int remaining() const { return params_.frame_count - produced_; }

  /// Next compressed frame (empty when the clip is exhausted).
  Bytes next_frame();

  /// Decodes a frame back to pixels (for end-to-end verification).
  static Image decode_frame(BytesView frame);

  /// The uncompressed frame the source would produce at `index` — lets a
  /// receiver verify content without shipping originals.
  Image reference_frame(int index) const;

 private:
  VideoParams params_;
  int produced_ = 0;
};

/// Client-side playout model.
class JitterBuffer {
 public:
  /// Playout starts `prebuffer` after the first arrival and then consumes
  /// one frame every 1/fps.
  JitterBuffer(int fps, Duration prebuffer) : fps_(fps), prebuffer_(prebuffer) {}

  void on_arrival(TimePoint now, std::size_t frame_bytes);

  struct Report {
    int frames = 0;
    int underruns = 0;        // frames that missed their playout deadline
    Duration worst_lateness;  // how late the worst frame was
    int max_depth = 0;        // peak frames buffered ahead of playout
    std::size_t bytes = 0;
  };
  Report report() const;

 private:
  int fps_;
  Duration prebuffer_;
  std::vector<TimePoint> arrivals_;
  std::size_t bytes_ = 0;
};

}  // namespace ncs::apps::vod
