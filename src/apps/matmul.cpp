#include "apps/matmul.hpp"

#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ncs::apps::matmul {

Matrix make_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (double& v : m) v = rng.next_double() * 2.0 - 1.0;
  return m;
}

void multiply_rows(const double* a, const double* b, double* c_rows, int n, int row_begin,
                   int row_end) {
  NCS_ASSERT(0 <= row_begin && row_begin <= row_end && row_end <= n);
  for (int i = row_begin; i < row_end; ++i) {
    double* c = c_rows + static_cast<std::ptrdiff_t>(i - row_begin) * n;
    const double* ai = a + static_cast<std::ptrdiff_t>(i) * n;
    for (int j = 0; j < n; ++j) c[j] = 0.0;
    for (int k = 0; k < n; ++k) {
      const double aik = ai[k];
      const double* bk = b + static_cast<std::ptrdiff_t>(k) * n;
      for (int j = 0; j < n; ++j) c[j] += aik * bk[j];
    }
  }
}

Matrix multiply(const Matrix& a, const Matrix& b, int n) {
  NCS_ASSERT(a.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  NCS_ASSERT(b.size() == a.size());
  Matrix c(a.size());
  multiply_rows(a.data(), b.data(), c.data(), n, 0, n);
  return c;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tolerance) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::fabs(a[i] - b[i]) > tolerance) return false;
  return true;
}

Bytes pack_rows(const double* rows, int n_rows, int n) {
  const std::size_t count = static_cast<std::size_t>(n_rows) * static_cast<std::size_t>(n);
  Bytes out(count * sizeof(double));
  std::memcpy(out.data(), rows, out.size());
  return out;
}

std::vector<double> unpack_rows(BytesView data) {
  NCS_ASSERT(data.size() % sizeof(double) == 0);
  std::vector<double> out(data.size() / sizeof(double));
  std::memcpy(out.data(), data.data(), data.size());
  return out;
}

}  // namespace ncs::apps::matmul
