#include "apps/image.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ncs::apps {

Image Image::strip(int row_begin, int row_end) const {
  NCS_ASSERT(0 <= row_begin && row_begin <= row_end && row_end <= height);
  Image out;
  out.width = width;
  out.height = row_end - row_begin;
  const std::size_t w = static_cast<std::size_t>(width);
  out.pixels.assign(pixels.begin() + static_cast<std::ptrdiff_t>(w * static_cast<std::size_t>(row_begin)),
                    pixels.begin() + static_cast<std::ptrdiff_t>(w * static_cast<std::size_t>(row_end)));
  return out;
}

Image make_test_image(int width, int height, std::uint64_t seed) {
  NCS_ASSERT(width > 0 && height > 0);
  Rng rng(seed);
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height));

  // Low-frequency phases randomized by the seed.
  const double p1 = rng.next_double() * 6.28;
  const double p2 = rng.next_double() * 6.28;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double fx = static_cast<double>(x) / width;
      const double fy = static_cast<double>(y) / height;
      double v = 120.0 + 60.0 * fx + 30.0 * std::sin(2 * std::numbers::pi * 3 * fy + p1) +
                 20.0 * std::sin(2 * std::numbers::pi * 5 * (fx + fy) + p2) +
                 6.0 * (rng.next_double() - 0.5);
      v = std::min(255.0, std::max(0.0, v));
      img.pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(v + 0.5);
    }
  }
  return img;
}

double psnr(const Image& a, const Image& b) {
  NCS_ASSERT(a.width == b.width && a.height == b.height);
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d = static_cast<double>(a.pixels[i]) - static_cast<double>(b.pixels[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

Bytes pack_image(const Image& img) {
  Bytes out(8 + img.pixels.size());
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(img.width));
  w.u32(static_cast<std::uint32_t>(img.height));
  w.bytes(BytesView(reinterpret_cast<const std::byte*>(img.pixels.data()), img.pixels.size()));
  return out;
}

Image unpack_image(BytesView data) {
  ByteReader r(data);
  Image img;
  img.width = static_cast<int>(r.u32());
  img.height = static_cast<int>(r.u32());
  const BytesView body = r.bytes(static_cast<std::size_t>(img.width) *
                                 static_cast<std::size_t>(img.height));
  img.pixels.resize(body.size());
  std::memcpy(img.pixels.data(), body.data(), body.size());
  return img;
}

}  // namespace ncs::apps
