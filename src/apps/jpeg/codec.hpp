// JPEG-style grayscale codec: 8x8 DCT, quantization, zigzag, run-length
// and Huffman entropy coding — the compression kernel of the paper's
// Section 5.2 pipeline.
//
// Baseline-JPEG shaped rather than byte-exact ITU T.81: the block
// pipeline, the coefficient statistics and the (run, size)+amplitude
// entropy model match; the container format is our own (canonical-Huffman
// tables embedded per stream). That preserves what the experiment
// measures — per-stage CPU cost proportional to pixels and a realistic
// compressed-size ratio — while staying self-contained.
#pragma once

#include <cstdint>

#include "apps/image.hpp"
#include "common/bytes.hpp"

namespace ncs::apps::jpeg {

struct CodecParams {
  /// 1 (worst) .. 100 (best); scales the quantization table like IJG.
  int quality = 75;
};

/// Compresses a grayscale image (any dimensions; edge blocks are padded by
/// replication).
Bytes compress(const Image& img, CodecParams params = {});

/// Inverse of compress().
Image decompress(BytesView stream);

/// Approximate per-pixel operation count of each direction, used by the
/// cluster drivers to charge simulated CPU cycles (the real computation is
/// performed as well; this only prices it).
double compress_ops_per_pixel();
double decompress_ops_per_pixel();

/// Exposed for tests: zigzag scan order of an 8x8 block.
const std::uint8_t* zigzag_order();

/// Exposed for tests: quantization table for a quality setting.
void quant_table(int quality, std::uint16_t out[64]);

}  // namespace ncs::apps::jpeg
