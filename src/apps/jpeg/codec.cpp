#include "apps/jpeg/codec.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/jpeg/bitstream.hpp"
#include "apps/jpeg/dct.hpp"
#include "apps/jpeg/huffman.hpp"
#include "common/assert.hpp"

namespace ncs::apps::jpeg {

namespace {

constexpr std::uint32_t kMagic = 0x4E434A31;  // "NCJ1"

// ITU T.81 Annex K luminance quantization table.
constexpr std::uint16_t kBaseQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::uint8_t kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

constexpr int kEob = 0x00;  // end-of-block AC symbol
constexpr int kZrl = 0xF0;  // 16-zero run AC symbol
constexpr int kDcAlphabet = 16;
constexpr int kAcAlphabet = 256;

/// Magnitude category: smallest s with |v| < 2^s.
int category(int v) {
  int a = std::abs(v);
  int s = 0;
  while (a != 0) {
    a >>= 1;
    ++s;
  }
  return s;
}

/// JPEG amplitude encoding: positive values as-is; negative values as
/// value + 2^s - 1 (one's complement trick).
std::uint32_t amplitude_bits(int v, int s) {
  return v >= 0 ? static_cast<std::uint32_t>(v)
                : static_cast<std::uint32_t>(v + (1 << s) - 1);
}

int amplitude_decode(std::uint32_t bits, int s) {
  if (s == 0) return 0;
  const std::uint32_t half = 1u << (s - 1);
  return bits >= half ? static_cast<int>(bits)
                      : static_cast<int>(bits) - (1 << s) + 1;
}

/// Per-block symbol stream: the DC category + AC (run,size) symbols with
/// their amplitudes — computed once, used for both the frequency pass and
/// the emission pass.
struct CodedBlock {
  int dc_category = 0;
  std::uint32_t dc_bits = 0;
  std::vector<std::pair<int, std::pair<int, std::uint32_t>>> ac;  // symbol, (size, bits)
};

void quantize_block(const Block& coeffs, const std::uint16_t q[64], int out[64]) {
  for (int i = 0; i < 64; ++i) {
    const double v = coeffs[static_cast<std::size_t>(i)] / q[i];
    out[i] = static_cast<int>(std::lround(v));
  }
}

CodedBlock code_block(const int quantized[64], int& prev_dc) {
  CodedBlock cb;
  int zz[64];
  for (int i = 0; i < 64; ++i) zz[i] = quantized[kZigzag[i]];

  const int diff = zz[0] - prev_dc;
  prev_dc = zz[0];
  cb.dc_category = category(diff);
  cb.dc_bits = amplitude_bits(diff, cb.dc_category);

  int run = 0;
  for (int i = 1; i < 64; ++i) {
    if (zz[i] == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      cb.ac.push_back({kZrl, {0, 0}});
      run -= 16;
    }
    const int s = category(zz[i]);
    // Orthonormal DCT of +-128-shifted samples bounds |coef| by 1024.
    NCS_ASSERT(s >= 1 && s <= 11);
    cb.ac.push_back({run * 16 + s, {s, amplitude_bits(zz[i], s)}});
    run = 0;
  }
  if (run > 0) cb.ac.push_back({kEob, {0, 0}});
  return cb;
}

}  // namespace

const std::uint8_t* zigzag_order() { return kZigzag; }

void quant_table(int quality, std::uint16_t out[64]) {
  NCS_ASSERT(quality >= 1 && quality <= 100);
  // IJG scaling.
  const int scale = quality < 50 ? 5000 / quality : 200 - quality * 2;
  for (int i = 0; i < 64; ++i) {
    int v = (kBaseQuant[i] * scale + 50) / 100;
    v = std::clamp(v, 1, 32767);
    out[i] = static_cast<std::uint16_t>(v);
  }
}

Bytes compress(const Image& img, CodecParams params) {
  NCS_ASSERT(img.width > 0 && img.height > 0);
  std::uint16_t q[64];
  quant_table(params.quality, q);

  const int bw = (img.width + 7) / 8;
  const int bh = (img.height + 7) / 8;

  // Pass 1: transform + quantize + symbol statistics.
  std::vector<CodedBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(bw) * static_cast<std::size_t>(bh));
  std::vector<std::uint64_t> dc_freq(kDcAlphabet, 0);
  std::vector<std::uint64_t> ac_freq(kAcAlphabet, 0);

  int prev_dc = 0;
  Block spatial, coeffs;
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      for (int y = 0; y < 8; ++y) {
        const int sy = std::min(by * 8 + y, img.height - 1);
        for (int x = 0; x < 8; ++x) {
          const int sx = std::min(bx * 8 + x, img.width - 1);
          spatial[static_cast<std::size_t>(y * 8 + x)] =
              static_cast<double>(img.at(sx, sy)) - 128.0;
        }
      }
      forward_dct(spatial, coeffs);
      int quantized[64];
      quantize_block(coeffs, q, quantized);
      CodedBlock cb = code_block(quantized, prev_dc);
      ++dc_freq[static_cast<std::size_t>(cb.dc_category)];
      for (const auto& [sym, payload] : cb.ac) ++ac_freq[static_cast<std::size_t>(sym)];
      blocks.push_back(std::move(cb));
    }
  }

  const HuffmanTable dc_table = HuffmanTable::build(dc_freq);
  const HuffmanTable ac_table = HuffmanTable::build(ac_freq);

  // Pass 2: emit.
  BitWriter bits;
  for (const CodedBlock& cb : blocks) {
    dc_table.encode(bits, cb.dc_category);
    if (cb.dc_category > 0) bits.put(cb.dc_bits, cb.dc_category);
    for (const auto& [sym, payload] : cb.ac) {
      ac_table.encode(bits, sym);
      if (payload.first > 0) bits.put(payload.second, payload.first);
    }
  }
  Bytes body = bits.finish();

  Bytes out;
  out.resize(4 + 4 + 4 + 1);
  {
    ByteWriter w(out);
    w.u32(kMagic);
    w.u32(static_cast<std::uint32_t>(img.width));
    w.u32(static_cast<std::uint32_t>(img.height));
    w.u8(static_cast<std::uint8_t>(params.quality));
  }
  dc_table.serialize(out);
  ac_table.serialize(out);
  const std::size_t len_pos = out.size();
  out.resize(len_pos + 4);
  {
    ByteWriter w(std::span<std::byte>(out).subspan(len_pos));
    w.u32(static_cast<std::uint32_t>(body.size()));
  }
  append(out, body);
  return out;
}

Image decompress(BytesView stream) {
  ByteReader r(stream);
  NCS_ASSERT_MSG(r.u32() == kMagic, "not an NCJ1 stream");
  Image img;
  img.width = static_cast<int>(r.u32());
  img.height = static_cast<int>(r.u32());
  const int quality = r.u8();
  const HuffmanTable dc_table = HuffmanTable::deserialize(r);
  const HuffmanTable ac_table = HuffmanTable::deserialize(r);
  const std::uint32_t body_len = r.u32();
  BitReader bits(r.bytes(body_len));

  std::uint16_t q[64];
  quant_table(quality, q);

  img.pixels.assign(static_cast<std::size_t>(img.width) * static_cast<std::size_t>(img.height),
                    0);
  const int bw = (img.width + 7) / 8;
  const int bh = (img.height + 7) / 8;

  int prev_dc = 0;
  Block coeffs, spatial;
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      int zz[64] = {};
      const int dc_cat = dc_table.decode(bits);
      const int diff = dc_cat > 0 ? amplitude_decode(bits.get(dc_cat), dc_cat) : 0;
      prev_dc += diff;
      zz[0] = prev_dc;

      int i = 1;
      while (i < 64) {
        const int sym = ac_table.decode(bits);
        if (sym == kEob) break;
        if (sym == kZrl) {
          i += 16;
          continue;
        }
        const int run = sym >> 4;
        const int s = sym & 0xF;
        i += run;
        NCS_ASSERT_MSG(i < 64, "AC index overflow in stream");
        zz[i++] = amplitude_decode(bits.get(s), s);
      }

      for (int k = 0; k < 64; ++k)
        coeffs[kZigzag[k]] = static_cast<double>(zz[k]) * q[kZigzag[k]];
      inverse_dct(coeffs, spatial);

      for (int y = 0; y < 8; ++y) {
        const int sy = by * 8 + y;
        if (sy >= img.height) continue;
        for (int x = 0; x < 8; ++x) {
          const int sx = bx * 8 + x;
          if (sx >= img.width) continue;
          const double v = spatial[static_cast<std::size_t>(y * 8 + x)] + 128.0;
          img.pixels[static_cast<std::size_t>(sy) * static_cast<std::size_t>(img.width) +
                     static_cast<std::size_t>(sx)] =
              static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5);
        }
      }
    }
  }
  return img;
}

double compress_ops_per_pixel() {
  // Dominated by the separable DCT (2 passes x 8 mul-adds per sample),
  // plus quantization and entropy coding.
  return 16 + 2 + 6;
}

double decompress_ops_per_pixel() {
  // IDCT mirrors the DCT; entropy decode is a little cheaper.
  return 16 + 2 + 4;
}

}  // namespace ncs::apps::jpeg
