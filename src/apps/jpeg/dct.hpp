// 8x8 type-II DCT and its inverse (orthonormal scaling), the transform
// stage of the JPEG pipeline. Separable implementation: 1-D transforms on
// rows then columns.
#pragma once

#include <array>

namespace ncs::apps::jpeg {

using Block = std::array<double, 64>;  // row-major 8x8

/// Forward DCT-II of a level-shifted block.
void forward_dct(const Block& in, Block& out);

/// Inverse DCT (DCT-III) — forward_dct's inverse under orthonormal scaling.
void inverse_dct(const Block& in, Block& out);

}  // namespace ncs::apps::jpeg
