#include "apps/jpeg/dct.hpp"

#include <cmath>
#include <numbers>

namespace ncs::apps::jpeg {

namespace {

/// cos((2n+1) u pi / 16) basis, scaled for orthonormality.
struct Basis {
  double c[8][8];  // c[u][n]
  Basis() {
    for (int u = 0; u < 8; ++u) {
      const double s = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n)
        c[u][n] = s * std::cos((2 * n + 1) * u * std::numbers::pi / 16.0);
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

}  // namespace

void forward_dct(const Block& in, Block& out) {
  const auto& c = basis().c;
  double tmp[64];
  // Rows.
  for (int y = 0; y < 8; ++y)
    for (int u = 0; u < 8; ++u) {
      double acc = 0;
      for (int x = 0; x < 8; ++x) acc += in[static_cast<std::size_t>(y * 8 + x)] * c[u][x];
      tmp[y * 8 + u] = acc;
    }
  // Columns.
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u) {
      double acc = 0;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * c[v][y];
      out[static_cast<std::size_t>(v * 8 + u)] = acc;
    }
}

void inverse_dct(const Block& in, Block& out) {
  const auto& c = basis().c;
  double tmp[64];
  // Columns (transpose of forward).
  for (int y = 0; y < 8; ++y)
    for (int u = 0; u < 8; ++u) {
      double acc = 0;
      for (int v = 0; v < 8; ++v) acc += in[static_cast<std::size_t>(v * 8 + u)] * c[v][y];
      tmp[y * 8 + u] = acc;
    }
  // Rows.
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      double acc = 0;
      for (int u = 0; u < 8; ++u) acc += tmp[y * 8 + u] * c[u][x];
      out[static_cast<std::size_t>(y * 8 + x)] = acc;
    }
}

}  // namespace ncs::apps::jpeg
