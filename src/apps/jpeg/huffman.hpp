// Canonical length-limited Huffman coding for the entropy stage.
//
// Codes are built from the symbol frequencies of the material being
// compressed (two-pass encoder) and shipped as a code-length table — the
// canonical-code property means lengths alone reconstruct the codebook.
// Lengths are limited to 16 bits as in JPEG; if the raw Huffman tree is
// deeper, frequencies are halved and the tree rebuilt until it fits.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/jpeg/bitstream.hpp"
#include "common/bytes.hpp"

namespace ncs::apps::jpeg {

inline constexpr int kMaxCodeLength = 16;

class HuffmanTable {
 public:
  /// Builds a canonical code for `frequencies.size()` symbols. Symbols
  /// with zero frequency get no code. At least one symbol must be used.
  static HuffmanTable build(std::span<const std::uint64_t> frequencies);

  /// Reconstructs a table from per-symbol code lengths.
  static HuffmanTable from_lengths(std::vector<std::uint8_t> lengths);

  int alphabet_size() const { return static_cast<int>(lengths_.size()); }
  const std::vector<std::uint8_t>& lengths() const { return lengths_; }
  bool has_code(int symbol) const { return lengths_[static_cast<std::size_t>(symbol)] != 0; }

  /// Writes `symbol`'s code.
  void encode(BitWriter& w, int symbol) const;

  /// Reads one symbol.
  int decode(BitReader& r) const;

  /// Serialized form: u16 alphabet size + one length byte per symbol.
  void serialize(Bytes& out) const;
  static HuffmanTable deserialize(ByteReader& r);

 private:
  void assign_canonical_codes();

  std::vector<std::uint8_t> lengths_;   // per symbol; 0 = unused
  std::vector<std::uint16_t> codes_;    // per symbol, left-aligned in `len` bits

  // Canonical decode acceleration: per length, first code value and the
  // symbols of that length in code order.
  std::uint16_t first_code_[kMaxCodeLength + 1] = {};
  std::uint16_t count_[kMaxCodeLength + 1] = {};
  std::vector<int> symbols_by_code_;     // all coded symbols, canonical order
  std::uint32_t first_index_[kMaxCodeLength + 1] = {};
};

}  // namespace ncs::apps::jpeg
