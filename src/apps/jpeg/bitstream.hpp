// MSB-first bit I/O for the entropy-coded segment.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/bytes.hpp"

namespace ncs::apps::jpeg {

class BitWriter {
 public:
  /// Appends the `count` low bits of `bits`, most significant first.
  void put(std::uint32_t bits, int count) {
    NCS_ASSERT(count >= 0 && count <= 24);
    acc_ = (acc_ << count) | (static_cast<std::uint64_t>(bits) & ((1ull << count) - 1));
    filled_ += count;
    while (filled_ >= 8) {
      filled_ -= 8;
      out_.push_back(static_cast<std::byte>((acc_ >> filled_) & 0xFF));
    }
  }

  /// Pads the final partial byte with 1-bits (JPEG convention) and returns
  /// the stream.
  Bytes finish() {
    if (filled_ > 0) {
      const int pad = 8 - filled_;
      put((1u << pad) - 1, pad);
    }
    return std::move(out_);
  }

  std::size_t bits_written() const { return out_.size() * 8 + static_cast<std::size_t>(filled_); }

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  /// Reads `count` bits MSB-first.
  std::uint32_t get(int count) {
    NCS_ASSERT(count >= 0 && count <= 24);
    while (filled_ < count) {
      NCS_ASSERT_MSG(pos_ < data_.size(), "bitstream underrun");
      acc_ = (acc_ << 8) | static_cast<std::uint64_t>(data_[pos_++]);
      filled_ += 8;
    }
    filled_ -= count;
    return static_cast<std::uint32_t>((acc_ >> filled_) & ((1ull << count) - 1));
  }

  /// Single-bit convenience used by the Huffman decoder.
  int get_bit() { return static_cast<int>(get(1)); }

  bool exhausted() const { return pos_ >= data_.size() && filled_ == 0; }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace ncs::apps::jpeg
