#include "apps/jpeg/huffman.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"

namespace ncs::apps::jpeg {

namespace {

/// Returns per-symbol code lengths of an (unlimited) Huffman tree.
std::vector<std::uint8_t> huffman_lengths(std::span<const std::uint64_t> freqs) {
  struct Node {
    std::uint64_t weight;
    int index;  // tie-break for determinism
    int left = -1, right = -1;
    int symbol = -1;
  };
  std::vector<Node> nodes;
  using Item = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back({freqs[s], static_cast<int>(nodes.size()), -1, -1, static_cast<int>(s)});
    heap.emplace(freqs[s], nodes.back().index);
  }
  NCS_ASSERT_MSG(!heap.empty(), "Huffman build with no used symbols");

  std::vector<std::uint8_t> lengths(freqs.size(), 0);
  if (heap.size() == 1) {
    // Single symbol: give it a 1-bit code.
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, static_cast<int>(nodes.size()), a, b, -1});
    heap.emplace(wa + wb, nodes.back().index);
  }

  // Depth-first length assignment (iterative).
  std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      lengths[static_cast<std::size_t>(n.symbol)] = static_cast<std::uint8_t>(depth);
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }
  return lengths;
}

}  // namespace

HuffmanTable HuffmanTable::build(std::span<const std::uint64_t> frequencies) {
  // Rebuild with halved frequencies until the deepest code fits 16 bits.
  std::vector<std::uint64_t> f(frequencies.begin(), frequencies.end());
  std::vector<std::uint8_t> lengths;
  for (;;) {
    lengths = huffman_lengths(f);
    const std::uint8_t deepest = *std::max_element(lengths.begin(), lengths.end());
    if (deepest <= kMaxCodeLength) break;
    for (auto& w : f)
      if (w > 0) w = (w + 1) / 2;
  }
  return from_lengths(std::move(lengths));
}

HuffmanTable HuffmanTable::from_lengths(std::vector<std::uint8_t> lengths) {
  HuffmanTable t;
  t.lengths_ = std::move(lengths);
  t.assign_canonical_codes();
  return t;
}

void HuffmanTable::assign_canonical_codes() {
  codes_.assign(lengths_.size(), 0);
  std::fill(std::begin(count_), std::end(count_), 0);
  for (std::uint8_t len : lengths_) {
    NCS_ASSERT(len <= kMaxCodeLength);
    if (len > 0) ++count_[len];
  }

  // Canonical numbering: shorter codes first; within a length, symbol order.
  std::uint16_t code = 0;
  std::uint32_t index = 0;
  symbols_by_code_.clear();
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    first_code_[len] = code;
    first_index_[len] = index;
    for (std::size_t s = 0; s < lengths_.size(); ++s) {
      if (lengths_[s] == len) {
        codes_[s] = code++;
        symbols_by_code_.push_back(static_cast<int>(s));
        ++index;
      }
    }
    NCS_ASSERT_MSG(code <= (1u << len), "over-subscribed Huffman code space");
    code = static_cast<std::uint16_t>(code << 1);
  }
}

void HuffmanTable::encode(BitWriter& w, int symbol) const {
  const auto s = static_cast<std::size_t>(symbol);
  NCS_ASSERT_MSG(lengths_[s] != 0, "encoding a symbol with no code");
  w.put(codes_[s], lengths_[s]);
}

int HuffmanTable::decode(BitReader& r) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code = (code << 1) | static_cast<std::uint32_t>(r.get_bit());
    const std::uint32_t offset = code - first_code_[len];
    if (count_[len] != 0 && code >= first_code_[len] && offset < count_[len]) {
      return symbols_by_code_[first_index_[len] + offset];
    }
  }
  NCS_UNREACHABLE("invalid Huffman code in stream");
}

void HuffmanTable::serialize(Bytes& out) const {
  const std::size_t base = out.size();
  out.resize(base + 2 + lengths_.size());
  ByteWriter w(std::span<std::byte>(out).subspan(base));
  w.u16(static_cast<std::uint16_t>(lengths_.size()));
  w.bytes(BytesView(reinterpret_cast<const std::byte*>(lengths_.data()), lengths_.size()));
}

HuffmanTable HuffmanTable::deserialize(ByteReader& r) {
  const std::uint16_t n = r.u16();
  const BytesView raw = r.bytes(n);
  std::vector<std::uint8_t> lengths(n);
  for (std::size_t i = 0; i < n; ++i) lengths[i] = static_cast<std::uint8_t>(raw[i]);
  return from_lengths(std::move(lengths));
}

}  // namespace ncs::apps::jpeg
