// Radix-2 decimation-in-frequency FFT (the paper's Section 5.3 workload),
// in both a whole-array form and the decomposed pieces the distributed
// drivers use.
//
// The paper's distributed scheme (Figs 19-21): with M sample points and
// T = 2N threads (two per node process), each thread owns R = M/(2T)
// butterfly rows — arrays A and B holding the upper and lower inputs.
// For the first log2(T) stages it computes X = A + B and
// Y = (A - B) * W^k, then exchanges one of the halves with the partner
// thread at distance d (upper keeps X, ships Y; lower the reverse). After
// those stages every thread holds one *independent* sub-FFT of size 2R,
// which it finishes locally (the pseudocode's "rearrange the index"
// stages). Concatenating all threads' outputs gives the DIF result in
// bit-reversed order; the host permutes once at the end.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace ncs::apps::fft {

using Complex = std::complex<double>;

/// O(M^2) reference DFT: X(i) = sum_k s(k) W^{ik}, W = e^{-j 2 pi / M}.
std::vector<Complex> dft_reference(std::span<const Complex> input);

/// In-place DIF FFT returning natural-order output. M must be a power of 2.
std::vector<Complex> fft(std::vector<Complex> input);

std::size_t bit_reverse(std::size_t value, int bits);
bool is_power_of_two(std::size_t v);
int log2_exact(std::size_t v);

/// Twiddle W_M^e.
Complex twiddle(std::size_t e, std::size_t m);

/// Deterministic synthetic sample set (sum of a few tones plus noise).
std::vector<Complex> make_samples(std::size_t m, std::uint64_t seed);

// ---- distributed pieces (paper Fig 21) ----

/// One global stage on a thread's rows: fills X[i] = A[i] + B[i] and
/// Y[i] = (A[i] - B[i]) * W^k with k = (thread_num*R + i) * 2^step mod M/2.
void global_stage(std::span<const Complex> a, std::span<const Complex> b,
                  std::span<Complex> x, std::span<Complex> y, int thread_num, int step,
                  std::size_t m, std::size_t n_threads);

/// True if `thread_num` keeps X (the sum half) at communication distance d.
inline bool keeps_sum_half(int thread_num, int d) { return thread_num % (2 * d) < d; }

/// Finishes the local sub-FFT: `data` holds 2R points whose butterfly
/// pairs sit at distance R; twiddles are in the full-M root system.
/// Output is the sub-FFT's DIF result (bit-reversed within the block).
void local_phase(std::span<Complex> data, std::size_t m);

/// Reassembles the concatenated per-thread outputs (bit-reversed DIF
/// order) into natural order.
std::vector<Complex> assemble(std::span<const Complex> concatenated);

/// Butterflies per thread per stage is R; flops per butterfly (complex
/// add + complex sub + complex multiply).
inline double flops_per_butterfly() { return 4 + 4 + 6; }

bool approx_equal(std::span<const Complex> a, std::span<const Complex> b,
                  double tolerance = 1e-6);

/// Complex vector (de)serialization for the wire.
Bytes pack(std::span<const Complex> values);
std::vector<Complex> unpack(BytesView data);

}  // namespace ncs::apps::fft
