// Dense matrix multiplication kernel (the paper's Section 5.1 workload).
//
// Plain row-major double matrices and a straightforward triple loop — the
// paper deliberately uses "a simple distributed matrix multiplication
// algorithm since our intent is to compare the performance of NCS ... with
// p4", not to showcase BLAS. The distributed drivers (src/cluster) move
// row blocks of A and the whole B, exactly like Figs 13/14.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace ncs::apps::matmul {

/// Row-major n x n matrix.
using Matrix = std::vector<double>;

/// Deterministic pseudo-random matrix with entries in [-1, 1).
Matrix make_matrix(int n, std::uint64_t seed);

/// C[row_begin..row_end) = A[row_begin..row_end) * B. A and B are n x n;
/// `c_rows` holds (row_end - row_begin) rows.
void multiply_rows(const double* a, const double* b, double* c_rows, int n, int row_begin,
                   int row_end);

/// Full C = A * B (reference and 1-node path).
Matrix multiply(const Matrix& a, const Matrix& b, int n);

/// Inner-loop operation count (multiply-adds) for a row block.
inline double op_count(int rows, int n) {
  return static_cast<double>(rows) * n * n;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tolerance = 1e-9);

/// Row-block (de)serialization for the wire.
Bytes pack_rows(const double* rows, int n_rows, int n);
std::vector<double> unpack_rows(BytesView data);

}  // namespace ncs::apps::matmul
