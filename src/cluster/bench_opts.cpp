#include "cluster/bench_opts.hpp"

#include <algorithm>
#include <cstring>

#include "cluster/cluster.hpp"

namespace ncs::cluster {

BenchTelemetry fold_telemetry(Cluster& cluster) {
  BenchTelemetry t;
  const obs::TelemetrySampler* ts = cluster.telemetry();
  if (ts == nullptr) return t;
  t.enabled = true;
  t.ticks = ts->ticks();
  const auto us = [](std::int64_t ps) { return static_cast<double>(ps) * 1e-6; };
  if (const obs::WindowedSketch* s = ts->find_sketch("mps/e2e");
      s != nullptr && s->total().count() > 0) {
    t.e2e_p99_us = us(s->total().quantile(0.99));
    t.e2e_p999_us = us(s->total().quantile(0.999));
  }
  if (const obs::WindowedSketch* s = ts->find_sketch("rma/op");
      s != nullptr && s->total().count() > 0) {
    t.rma_p99_us = us(s->total().quantile(0.99));
    t.rma_p999_us = us(s->total().quantile(0.999));
  }
  for (const obs::SloEngine::State& s : ts->slo().states()) {
    const double compliance =
        s.windows == 0 ? 1.0
                       : static_cast<double>(s.compliant_windows) /
                             static_cast<double>(s.windows);
    t.slo_compliance = std::min(t.slo_compliance, compliance);
    t.slo_max_burn = std::max(t.slo_max_burn, s.max_burn);
    t.slo_hard_breaches += s.hard_breaches;
  }
  if (const obs::FlightRecorder* fr = cluster.recorder(); fr != nullptr) {
    t.recorder_triggers = fr->triggers();
    t.recorder_dumps = fr->dumps();
  }
  return t;
}

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      o.json = true;
      o.json_path.clear();
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      o.json = true;
      o.json_path = a + 7;
    } else if (std::strcmp(a, "--trace") == 0) {
      o.trace = true;
      o.trace_path.clear();
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      o.trace = true;
      o.trace_path = a + 8;
    } else if (std::strcmp(a, "--prof") == 0) {
      o.prof = true;
      o.prof_prefix.clear();
    } else if (std::strncmp(a, "--prof=", 7) == 0) {
      o.prof = true;
      o.prof_prefix = a + 7;
    } else if (std::strcmp(a, "--telemetry") == 0) {
      o.telemetry = true;
      o.telemetry_prefix.clear();
    } else if (std::strncmp(a, "--telemetry=", 12) == 0) {
      o.telemetry = true;
      o.telemetry_prefix = a + 12;
    }
  }
  if (o.telemetry && !o.prof) {
    o.prof = true;
    o.prof_prefix = o.telemetry_prefix;
  }
  return o;
}

std::string BenchOptions::report_path(const std::string& tag) const {
  if (!prof) return "";
  return (prof_prefix.empty() ? tag : prof_prefix) + "_report.json";
}

std::string BenchOptions::recorder_path(const std::string& tag) const {
  if (!telemetry) return "";
  const std::string prefix =
      !telemetry_prefix.empty() ? telemetry_prefix
                                : (prof_prefix.empty() ? tag : prof_prefix);
  return prefix + "_recorder.json";
}

void BenchOptions::apply(ClusterConfig* config, const std::string& tag) const {
  if (trace)
    config->trace_path = trace_path.empty() ? tag + "_trace.json" : trace_path;
  if (prof) {
    const std::string prefix = prof_prefix.empty() ? tag : prof_prefix;
    config->profile = true;
    config->report_path = prefix + "_report.json";
    if (config->trace_path.empty()) config->trace_path = prefix + "_trace.json";
  }
  if (telemetry) {
    config->telemetry = true;
    config->recorder_path = recorder_path(tag);
  }
}

}  // namespace ncs::cluster
