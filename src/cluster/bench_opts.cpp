#include "cluster/bench_opts.hpp"

#include <cstring>

namespace ncs::cluster {

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      o.json = true;
      o.json_path.clear();
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      o.json = true;
      o.json_path = a + 7;
    } else if (std::strcmp(a, "--trace") == 0) {
      o.trace = true;
      o.trace_path.clear();
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      o.trace = true;
      o.trace_path = a + 8;
    } else if (std::strcmp(a, "--prof") == 0) {
      o.prof = true;
      o.prof_prefix.clear();
    } else if (std::strncmp(a, "--prof=", 7) == 0) {
      o.prof = true;
      o.prof_prefix = a + 7;
    }
  }
  return o;
}

std::string BenchOptions::report_path(const std::string& tag) const {
  if (!prof) return "";
  return (prof_prefix.empty() ? tag : prof_prefix) + "_report.json";
}

void BenchOptions::apply(ClusterConfig* config, const std::string& tag) const {
  if (trace)
    config->trace_path = trace_path.empty() ? tag + "_trace.json" : trace_path;
  if (prof) {
    const std::string prefix = prof_prefix.empty() ? tag : prof_prefix;
    config->profile = true;
    config->report_path = prefix + "_report.json";
    if (config->trace_path.empty()) config->trace_path = prefix + "_trace.json";
  }
}

}  // namespace ncs::cluster
