// Cooperative compute charging.
//
// Under user-space threads nothing preempts a running computation: a
// monolithic multi-second charge() would starve the send/receive system
// threads and stall the NIC pipeline behind it — visibly wrecking the HSM
// tier. Well-behaved 1995 thread code yielded periodically for exactly
// this reason, and the paper's Fig 16 shows computation interleaving with
// communication at fine grain. charge_compute() charges in ~quantum-sized
// slices with a yield between slices, giving the scheduler its dispatch
// points (the higher-priority system threads win them when they have
// work).
#pragma once

#include <algorithm>

#include "core/mts/scheduler.hpp"

namespace ncs::cluster {

inline constexpr double kDefaultComputeQuantumCycles = 2e6;  // ~50 ms at 40 MHz

inline void charge_compute(mts::Scheduler& host, double cycles,
                           double quantum_cycles = kDefaultComputeQuantumCycles) {
  while (cycles > 0) {
    const double q = std::min(cycles, quantum_cycles);
    host.charge_cycles(q, sim::Activity::compute);
    cycles -= q;
    // Only the (higher-priority) system threads may take the dispatch
    // point: sibling compute threads must not timeshare, or the first
    // pipeline stage finishes late and every downstream stage slips.
    if (cycles > 0) host.yield_to_higher();
  }
}

}  // namespace ncs::cluster
