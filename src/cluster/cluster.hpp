// Experiment harness: builds a simulated testbed (hosts + network),
// binds a runtime (plain p4, NCS over p4, or NCS over the ATM API), runs
// one application main per process, and reports the simulated makespan.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "atm/signaling.hpp"
#include "cluster/config.hpp"
#include "core/api.hpp"
#include "core/mps/coll_offload.hpp"
#include "core/mps/node.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "p4/p4.hpp"
#include "proto/segment_network.hpp"
#include "sim/timeline.hpp"

namespace ncs::cluster {

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  const ClusterConfig& config() const { return config_; }
  int n_procs() const { return config_.n_procs; }
  mts::Scheduler& host(int rank) { return *hosts_[static_cast<std::size_t>(rank)]; }

  /// Call before init_*/run to record per-thread activity timelines.
  void enable_timeline();
  sim::Timeline& timeline() { return timeline_; }

  /// Call before init_*/run to record a Chrome-trace event log: per-thread
  /// scheduler spans, MPS transfer spans, NIC/switch pipeline spans, and
  /// protocol instants (TCP retransmits, NCS flow-control stalls, ...).
  void enable_trace();
  obs::TraceLog* trace() { return trace_enabled_ ? &trace_ : nullptr; }

  /// Writes the accumulated trace to `path` (Chrome Trace Event JSON —
  /// loads in ui.perfetto.dev / chrome://tracing). When the timeline is
  /// also enabled, its per-thread compute/communicate/idle activity spans
  /// are merged in. Call after run(). Returns false if the file could not
  /// be written.
  bool write_trace(const std::string& path);

  /// Call before init_*/run to attribute where message time goes: one
  /// cluster-wide Profiler collects per-layer latency histograms (message
  /// lifecycle legs, NIC DMA/SAR/wire, flow-control stalls, ...) from every
  /// host, node and NIC. Implies enable_timeline() so per-host
  /// compute/communicate overlap can be folded from activity intervals.
  void enable_profiling();
  obs::Profiler* profiler() { return profiler_.get(); }

  /// Call before init_*/run to turn on the live telemetry plane (implies
  /// enable_profiling()): a TelemetrySampler ticks every
  /// config.telemetry_cfg.period, snapshotting windowed latency sketches,
  /// queue/credit gauges and SLO grades; a FlightRecorder collects recent
  /// moments per host and dumps on the first failure when
  /// config.recorder_path is set. Construction-time config.telemetry calls
  /// this automatically.
  void enable_telemetry();
  obs::TelemetrySampler* telemetry() { return telemetry_.get(); }
  obs::FlightRecorder* recorder() { return recorder_.get(); }

  /// The run-wide metrics registry: every module's counters under
  /// "p<r>/mts/...", "p<r>/mps/...", "p<r>/nic/...", "switch/...",
  /// "tcp/...", "ether/...". Built lazily on first call — call after
  /// init_* so runtime modules are included.
  obs::MetricsRegistry& metrics();

  // --- runtime selection (exactly one per Cluster instance) ---

  /// Plain p4 over TCP/IP over this cluster's network.
  p4::Runtime& init_p4();

  /// NCS approach 1 (NSM): NCS_MTS over p4 — the paper's benchmarked mode.
  void init_ncs_nsm();

  /// NCS approach 2 (HSM): NCS straight on the ATM API. Requires an ATM
  /// network kind.
  void init_ncs_hsm();

  p4::Runtime& p4() { return *p4_; }
  bool has_p4() const { return p4_ != nullptr; }
  mps::Node& node(int rank) { return *nodes_[static_cast<std::size_t>(rank)]; }
  bool has_ncs() const { return !nodes_.empty(); }

  /// The one-sided engine of `rank` (config.rma_enabled HSM runs only).
  rma::Engine& rma(int rank) { return *rma_engines_[static_cast<std::size_t>(rank)]; }
  bool has_rma() const { return !rma_engines_.empty(); }

  /// The NIC-offload collective port of `rank` (HSM runs with
  /// config.ncs.coll.nic_offload only).
  mps::NicCollPort& coll_port(int rank) {
    return *coll_ports_[static_cast<std::size_t>(rank)];
  }
  bool has_coll_offload() const { return !coll_ports_.empty(); }

  /// The physical substrate, for statistics reporting (null when the other
  /// network kind is configured).
  ether::Bus* ethernet() { return bus_.get(); }
  atm::AtmFabric* atm_fabric() { return fabric_.get(); }

  /// The fault injector, pre-wired to every physical element of this
  /// cluster's topology (links by name, switches, NICs, hosts as "p<r>").
  /// `config.faults` is armed on it at run(); additional plans can be
  /// scheduled directly at any time.
  fault::FaultInjector& fault_injector() { return *injector_; }

  /// Total NcsExceptions raised into application threads across all nodes
  /// (0 on a fault-free or fully-recovered run). Call after run().
  std::uint64_t ncs_exception_count() const;

  /// Runs main_fn(rank) as a thread on every host; returns the simulated
  /// time from launch until the last main finishes.
  Duration run(std::function<void(int)> main_fn);

 private:
  /// Registers the gauge probes, binds the configured SLOs, installs the
  /// hard-breach -> recorder hook and arms the sampler. Called from run()
  /// so every runtime module (nodes, RMA engines, fabric) exists.
  void bind_telemetry();

  ClusterConfig config_;
  sim::Engine engine_;
  sim::Timeline timeline_;
  bool timeline_enabled_ = false;
  obs::TraceLog trace_;
  bool trace_enabled_ = false;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::TelemetrySampler> telemetry_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  /// Mains still running; run() counts it down and the telemetry sampler's
  /// keep_going predicate reads it (a member so the periodic event can
  /// never dangle).
  int mains_remaining_ = 0;

  std::vector<std::unique_ptr<mts::Scheduler>> hosts_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<fault::HostFault>> host_faults_;
  std::unique_ptr<ether::Bus> bus_;
  std::unique_ptr<atm::AtmFabric> fabric_;
  std::unique_ptr<atm::CallController> call_controller_;  // SVC mode only
  std::unique_ptr<proto::SegmentNetwork> segnet_;
  std::unique_ptr<p4::Runtime> p4_;
  std::vector<std::unique_ptr<mps::Node>> nodes_;
  std::vector<std::unique_ptr<rma::Engine>> rma_engines_;
  std::vector<std::unique_ptr<mps::NicCollPort>> coll_ports_;
};

}  // namespace ncs::cluster
