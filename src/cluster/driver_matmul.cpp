#include <cstring>

#include "apps/matmul.hpp"
#include "cluster/compute.hpp"
#include "cluster/drivers.hpp"
#include "common/assert.hpp"

namespace ncs::cluster {

namespace {

using apps::matmul::make_matrix;
using apps::matmul::Matrix;
using apps::matmul::multiply;
using apps::matmul::multiply_rows;
using apps::matmul::op_count;
using apps::matmul::pack_rows;
using apps::matmul::unpack_rows;

constexpr int kTypeB = 10;
constexpr int kTypeA = 11;
constexpr int kTypeC = 12;

void init_ncs(Cluster& c, NcsTier tier) {
  if (tier == NcsTier::nsm_p4) {
    c.init_ncs_nsm();
  } else {
    c.init_ncs_hsm();
  }
}

}  // namespace

namespace {

/// The paper's one-node rows are a single workstation running the whole
/// problem (both tables show p4 ~= NCS there, i.e. no host/node message
/// traffic): sequential compute, plus thread-maintenance overhead in the
/// NCS variant.
AppResult run_matmul_single(ClusterConfig base, int threads) {
  const Calibration& cal = calibration();
  const int n = cal.matmul_n;
  base.n_procs = 1;
  Cluster cluster(std::move(base));
  if (threads > 1) cluster.init_ncs_nsm();  // spawns the NCS system threads

  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  Matrix c(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);

  const Duration elapsed = cluster.run([&](int) {
    mts::Scheduler& host = cluster.host(0);
    if (threads == 1) {
      charge_compute(host, op_count(n, n) * cal.matmul_cycles_per_op);
      multiply_rows(a.data(), b.data(), c.data(), n, 0, n);
      return;
    }
    const int rows = n / threads;
    std::vector<mts::Thread*> workers;
    for (int t = 0; t < threads; ++t) {
      workers.push_back(host.spawn([&, t] {
        charge_compute(host, op_count(rows, n) * cal.matmul_cycles_per_op);
        multiply_rows(a.data() + static_cast<std::ptrdiff_t>(t) * rows * n, b.data(),
                      c.data() + static_cast<std::ptrdiff_t>(t) * rows * n, n, 0, rows);
      }, {.name = "compute" + std::to_string(t)}));
    }
    for (mts::Thread* w : workers) host.join(w);
  });

  AppResult result{elapsed, false};
  result.correct = apps::matmul::approx_equal(c, multiply(a, b, n), 1e-9);
  result.result_hash = fnv1a(c.data(), c.size() * sizeof(double));
  fill_runtime_stats(cluster, result);
  return result;
}

}  // namespace

AppResult run_matmul_p4(ClusterConfig base, int nodes) {
  const Calibration& cal = calibration();
  const int n = cal.matmul_n;
  NCS_ASSERT(nodes >= 1 && n % nodes == 0);
  if (nodes == 1) return run_matmul_single(std::move(base), 1);
  base.n_procs = nodes + 1;
  Cluster cluster(std::move(base));
  p4::Runtime& rt = cluster.init_p4();

  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  Matrix c(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  const int rows = n / nodes;

  const Duration elapsed = cluster.run([&](int rank) {
    p4::Process& p = rt.process(rank);
    if (rank == 0) {
      // Host process (paper Fig 13): whole B + a row block of A per node.
      for (int i = 1; i <= nodes; ++i) {
        p.send(kTypeB, i, pack_rows(b.data(), n, n));
        p.send(kTypeA, i,
               pack_rows(a.data() + static_cast<std::ptrdiff_t>(i - 1) * rows * n, rows, n));
      }
      for (int i = 1; i <= nodes; ++i) {
        int type = kTypeC;
        int from = i;
        const Bytes data = p.recv(&type, &from);
        const auto c_rows = unpack_rows(data);
        std::memcpy(c.data() + static_cast<std::ptrdiff_t>(i - 1) * rows * n, c_rows.data(),
                    c_rows.size() * sizeof(double));
      }
    } else {
      int type = kTypeB;
      int from = 0;
      const auto b_local = unpack_rows(p.recv(&type, &from));
      type = kTypeA;
      from = 0;
      const auto a_rows = unpack_rows(p.recv(&type, &from));

      std::vector<double> c_rows(static_cast<std::size_t>(rows) * static_cast<std::size_t>(n));
      charge_compute(p.host(), op_count(rows, n) * calibration().matmul_cycles_per_op);
      multiply_rows(a_rows.data(), b_local.data(), c_rows.data(), n, 0, rows);
      p.send(kTypeC, 0, pack_rows(c_rows.data(), rows, n));
    }
  });

  AppResult result{elapsed, false};
  result.correct = apps::matmul::approx_equal(c, multiply(a, b, n), 1e-9);
  result.result_hash = fnv1a(c.data(), c.size() * sizeof(double));
  fill_runtime_stats(cluster, result);
  return result;
}

AppResult run_matmul_ncs(ClusterConfig base, int nodes, NcsTier tier, int threads_per_node) {
  const Calibration& cal = calibration();
  const int n = cal.matmul_n;
  const int tpn = threads_per_node;
  NCS_ASSERT(nodes >= 1 && tpn >= 1 && n % (nodes * tpn) == 0);
  if (nodes == 1) return run_matmul_single(std::move(base), tpn);
  base.n_procs = nodes + 1;
  Cluster cluster(std::move(base));
  init_ncs(cluster, tier);

  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  Matrix c(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  const int rpt = n / (nodes * tpn);  // rows per thread

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);

    if (rank == 0) {
      // Host (paper Fig 14): thread t drives thread t of every node and
      // owns the matching slice of C. B goes out once per node (all node
      // threads share their process's address space), and first — every
      // node thread depends on it. Thread 0 runs one priority level above
      // its sibling so the B transfers are never queued behind A slices
      // (the multi-level priority scheduler is an NCS feature, Fig 9).
      std::vector<int> tids;
      for (int t = 0; t < tpn; ++t) {
        tids.push_back(node.t_create([&, t] {
          if (t == 0)
            for (int i = 1; i <= nodes; ++i) node.send(0, 0, i, pack_rows(b.data(), n, n));
          for (int i = 1; i <= nodes; ++i) {
            const int slice = (i - 1) * tpn + t;
            node.send(t, t, i,
                      pack_rows(a.data() + static_cast<std::ptrdiff_t>(slice) * rpt * n, rpt, n));
          }
          for (int i = 1; i <= nodes; ++i) {
            const Bytes data = node.recv(t, i, t);
            const auto c_rows = unpack_rows(data);
            const int slice = (i - 1) * tpn + t;
            std::memcpy(c.data() + static_cast<std::ptrdiff_t>(slice) * rpt * n, c_rows.data(),
                        c_rows.size() * sizeof(double));
          }
        }, t == 0 ? mts::kDefaultPriority - 1 : mts::kDefaultPriority,
           "host-t" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    } else {
      // Node process: thread 0 receives B into process-shared storage and
      // signals the siblings (shared address space, paper Section 5.1).
      auto b_local = std::make_shared<std::vector<double>>();
      auto b_ready = std::make_shared<mts::Event>(node.host());

      std::vector<int> tids;
      for (int t = 0; t < tpn; ++t) {
        tids.push_back(node.t_create([&, t, b_local, b_ready] {
          if (t == 0) {
            *b_local = unpack_rows(node.recv(0, 0, 0));
            b_ready->set();
          } else {
            b_ready->wait();
          }
          const auto a_rows = unpack_rows(node.recv(t, 0, t));
          std::vector<double> c_rows(static_cast<std::size_t>(rpt) *
                                     static_cast<std::size_t>(n));
          charge_compute(node.host(), op_count(rpt, n) * calibration().matmul_cycles_per_op);
          multiply_rows(a_rows.data(), b_local->data(), c_rows.data(), n, 0, rpt);
          node.send(t, t, 0, pack_rows(c_rows.data(), rpt, n));
        }, mts::kDefaultPriority, "compute" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    }
  });

  AppResult result{elapsed, false};
  result.correct = apps::matmul::approx_equal(c, multiply(a, b, n), 1e-9);
  result.result_hash = fnv1a(c.data(), c.size() * sizeof(double));
  fill_runtime_stats(cluster, result);
  return result;
}

AppResult run_matmul_coll(ClusterConfig base, int nodes, NcsTier tier) {
  const Calibration& cal = calibration();
  const int n = cal.matmul_n;
  NCS_ASSERT(nodes >= 1 && n % nodes == 0);
  base.n_procs = nodes;
  Cluster cluster(std::move(base));
  init_ncs(cluster, tier);

  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  Matrix c(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  const int rows = n / nodes;

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);

    // B to everyone (tree fan-out at scale), then each rank's row block of
    // A in one scatter — the Fig 13/14 traffic as two collectives.
    Bytes b_blob;
    if (rank == 0) b_blob = pack_rows(b.data(), n, n);
    const auto b_local = unpack_rows(node.bcast(0, b_blob));

    std::vector<Bytes> a_slices;
    if (rank == 0) {
      a_slices.reserve(static_cast<std::size_t>(nodes));
      for (int i = 0; i < nodes; ++i)
        a_slices.push_back(
            pack_rows(a.data() + static_cast<std::ptrdiff_t>(i) * rows * n, rows, n));
    }
    const auto a_rows = unpack_rows(node.scatter(0, a_slices));

    std::vector<double> c_rows(static_cast<std::size_t>(rows) * static_cast<std::size_t>(n));
    charge_compute(node.host(), op_count(rows, n) * cal.matmul_cycles_per_op);
    multiply_rows(a_rows.data(), b_local.data(), c_rows.data(), n, 0, rows);

    const auto gathered = node.gather(0, pack_rows(c_rows.data(), rows, n));
    if (rank == 0) {
      for (int i = 0; i < nodes; ++i) {
        const auto block = unpack_rows(gathered[static_cast<std::size_t>(i)]);
        std::memcpy(c.data() + static_cast<std::ptrdiff_t>(i) * rows * n, block.data(),
                    block.size() * sizeof(double));
      }
    }
    node.barrier();
  });

  AppResult result{elapsed, false};
  result.correct = apps::matmul::approx_equal(c, multiply(a, b, n), 1e-9);
  result.result_hash = fnv1a(c.data(), c.size() * sizeof(double));
  fill_runtime_stats(cluster, result);
  return result;
}

}  // namespace ncs::cluster
