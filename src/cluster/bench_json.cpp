#include "cluster/bench_json.hpp"

#include <cstdio>

#include "cluster/bench_opts.hpp"
#include "common/assert.hpp"

namespace ncs::cluster {

BenchReport::Field& BenchReport::add(const std::string& field) {
  NCS_ASSERT_MSG(!rows_.empty(), "set() before row()");
  rows_.back().push_back(Field{});
  rows_.back().back().name = field;
  return rows_.back().back();
}

BenchReport::Field& BenchReport::add_summary(const std::string& field) {
  summary_.push_back(Field{});
  summary_.back().name = field;
  return summary_.back();
}

void BenchReport::set(const std::string& field, double v) {
  Field& f = add(field);
  f.kind = Field::Kind::number;
  f.num = v;
}

void BenchReport::set(const std::string& field, std::int64_t v) {
  Field& f = add(field);
  f.kind = Field::Kind::integer;
  f.i64 = v;
}

void BenchReport::set(const std::string& field, std::uint64_t v) {
  Field& f = add(field);
  f.kind = Field::Kind::unsigned_integer;
  f.u64 = v;
}

void BenchReport::set(const std::string& field, const std::string& v) {
  Field& f = add(field);
  f.kind = Field::Kind::string;
  f.str = v;
}

void BenchReport::set(const std::string& field, bool v) {
  Field& f = add(field);
  f.kind = Field::Kind::boolean;
  f.b = v;
}

void BenchReport::summary(const std::string& field, double v) {
  Field& f = add_summary(field);
  f.kind = Field::Kind::number;
  f.num = v;
}

void BenchReport::summary(const std::string& field, std::int64_t v) {
  Field& f = add_summary(field);
  f.kind = Field::Kind::integer;
  f.i64 = v;
}

void BenchReport::summary(const std::string& field, const std::string& v) {
  Field& f = add_summary(field);
  f.kind = Field::Kind::string;
  f.str = v;
}

void BenchReport::summary(const std::string& field, bool v) {
  Field& f = add_summary(field);
  f.kind = Field::Kind::boolean;
  f.b = v;
}

void BenchReport::write_field(obs::JsonWriter& w, const Field& f) {
  w.key(f.name);
  switch (f.kind) {
    case Field::Kind::number: w.value(f.num); break;
    case Field::Kind::integer: w.value(f.i64); break;
    case Field::Kind::unsigned_integer: w.value(f.u64); break;
    case Field::Kind::string: w.value(std::string_view(f.str)); break;
    case Field::Kind::boolean: w.value(f.b); break;
  }
}

std::string BenchReport::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(std::string_view("ncs-bench-v1"));
  w.key("bench").value(std::string_view(bench_));
  w.key("rows").begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (const Field& f : row) write_field(w, f);
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  for (const Field& f : summary_) write_field(w, f);
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

void BenchReport::emit(const std::string& path) const { emit_json(to_json(), path); }

void emit_json(const std::string& doc, const std::string& path) {
  if (path.empty() || path == "-") {
    std::fputs(doc.c_str(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  NCS_ASSERT_MSG(f != nullptr, "cannot open --json output file");
  std::fputs(doc.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

bool parse_json_flag(int argc, char** argv, std::string* path) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  if (opts.json) *path = opts.json_path;
  return opts.json;
}

}  // namespace ncs::cluster
