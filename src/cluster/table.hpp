// Paper-style table rendering for the benchmark harness.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"

namespace ncs::cluster {

/// One row of a Tables-1/2/3-shaped comparison.
struct TableRow {
  int nodes = 0;
  Duration p4_ethernet;
  Duration ncs_ethernet;
  Duration p4_atm;
  Duration ncs_atm;
  bool has_ethernet = true;
  bool has_atm = true;
};

/// Percentage improvement of NCS over p4 — the paper's metric:
/// (p4 - ncs) / p4 * 100.
double improvement_pct(Duration p4_time, Duration ncs_time);

/// Renders the paper's two-testbed layout:
///   Nodes | p4 | NCS_MTS/p4 | %impr || p4 | NCS_MTS/p4 | %impr
std::string format_table(const std::string& title, const std::string& left_testbed,
                         const std::string& right_testbed,
                         const std::vector<TableRow>& rows);

/// The same rows as schema "ncs-bench-v1" JSON (see bench_json.hpp): one
/// row object per node count with *_sec fields, "all_correct" in summary.
std::string table_json(const std::string& bench, const std::vector<TableRow>& rows,
                       bool all_correct);

}  // namespace ncs::cluster
