// Distributed application drivers — the paper's Section 5 experiments.
//
// Each application exists in two structurally-matched variants:
//   *_p4  : plain p4, one thread per process (the paper's baseline,
//           Figs 13, 19).
//   *_ncs : NCS_MTS/p4 with `threads_per_node` compute threads per node
//           process (the paper's multithreaded versions, Figs 14, 17/18,
//           20/21). The host is rank 0 in both variants.
//
// Every run performs the real computation on real data and verifies the
// distributed result against a sequential reference — the verification
// happens outside simulated time and is reported in AppResult::correct.
//
// Pass a preset from config.hpp (sun_ethernet / sun_atm_lan / nynet_wan);
// the driver overrides n_procs with nodes+1 (host + node processes).
#pragma once

#include "cluster/cluster.hpp"
#include "cluster/report.hpp"

namespace ncs::cluster {

struct AppResult {
  Duration elapsed;
  bool correct = false;
  /// FNV-1a digest of the application's distributed output — equal digests
  /// mean bit-identical results (chaos runs vs fault-free, repeat vs
  /// repeat).
  std::uint64_t result_hash = 0;
  /// NcsExceptions raised into application threads (0 = clean run or every
  /// fault fully recovered by error control).
  std::uint64_t exceptions = 0;
  /// Error-control retransmissions summed over all nodes.
  std::uint64_t retransmits = 0;
  /// bottleneck_report() of a profiled run (ClusterConfig::profile set);
  /// empty otherwise. The cluster dies with the driver, so the rendered
  /// table is the profile's survivor.
  std::string bottleneck;

  // Telemetry summary (ClusterConfig::telemetry runs; zero otherwise).
  // Quantiles are over the run-total end-to-end / RMA sketches — like the
  // bottleneck table, these survive the cluster so benches can report and
  // gate on tail latency.
  bool telemetry = false;
  std::uint64_t telemetry_ticks = 0;
  double e2e_p99_us = 0.0;
  double e2e_p999_us = 0.0;
  double rma_p99_us = 0.0;
  double rma_p999_us = 0.0;
  /// Worst (minimum) run-level SLO compliance across all objectives, 1.0
  /// when every window complied; worst burn rate seen in any window.
  double slo_min_compliance = 1.0;
  double slo_max_burn = 0.0;
  std::uint64_t slo_hard_breaches = 0;
  std::uint64_t recorder_triggers = 0;
  std::uint64_t recorder_dumps = 0;

  /// Per-core scheduler counters, one entry per (process, core). Always
  /// filled (cores=1 runs produce one row per process) so benches can emit
  /// stable per-core columns regardless of the smp configuration.
  struct CoreUsage {
    int proc = 0;
    int core = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t steals_in = 0;
    std::uint64_t steals_out = 0;
    std::uint64_t migrations_in = 0;
    Duration cpu_busy;
  };
  std::vector<CoreUsage> cores;
  /// Sum of steals_in over all processes and cores (0 at cores=1).
  std::uint64_t steals = 0;
};

/// FNV-1a over raw bytes; pass a previous digest as `h` to chain buffers.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = 0xCBF29CE484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Copies the run's fault-facing counters out of the cluster.
inline void fill_runtime_stats(Cluster& c, AppResult& r) {
  if (c.profiler() != nullptr) r.bottleneck = bottleneck_report(c);
  if (obs::TelemetrySampler* ts = c.telemetry(); ts != nullptr) {
    r.telemetry = true;
    r.telemetry_ticks = ts->ticks();
    const auto us = [](std::int64_t ps) { return static_cast<double>(ps) * 1e-6; };
    if (const obs::WindowedSketch* s = ts->find_sketch("mps/e2e");
        s != nullptr && s->total().count() > 0) {
      r.e2e_p99_us = us(s->total().quantile(0.99));
      r.e2e_p999_us = us(s->total().quantile(0.999));
    }
    if (const obs::WindowedSketch* s = ts->find_sketch("rma/op");
        s != nullptr && s->total().count() > 0) {
      r.rma_p99_us = us(s->total().quantile(0.99));
      r.rma_p999_us = us(s->total().quantile(0.999));
    }
    for (const obs::SloEngine::State& s : ts->slo().states()) {
      const double compliance =
          s.windows == 0 ? 1.0
                         : static_cast<double>(s.compliant_windows) /
                               static_cast<double>(s.windows);
      if (compliance < r.slo_min_compliance) r.slo_min_compliance = compliance;
      if (s.max_burn > r.slo_max_burn) r.slo_max_burn = s.max_burn;
      r.slo_hard_breaches += s.hard_breaches;
    }
  }
  if (obs::FlightRecorder* fr = c.recorder(); fr != nullptr) {
    r.recorder_triggers = fr->triggers();
    r.recorder_dumps = fr->dumps();
  }
  for (int p = 0; p < c.n_procs(); ++p) {
    mts::Scheduler& h = c.host(p);
    for (int core = 0; core < h.n_cores(); ++core) {
      const mts::CoreStats& s = h.core_stats(core);
      r.cores.push_back({p, core, s.dispatches, s.steals_in, s.steals_out,
                         s.migrations_in, s.cpu_busy});
      r.steals += s.steals_in;
    }
  }
  if (!c.has_ncs()) return;
  r.exceptions = c.ncs_exception_count();
  for (int i = 0; i < c.n_procs(); ++i)
    r.retransmits += c.node(i).error_control().stats().retransmits;
}

/// Which NCS tier the *_ncs drivers bind (the paper evaluates NSM).
enum class NcsTier { nsm_p4, hsm_atm };

// --- Matrix multiplication (Table 1; Figs 13/14) ---
AppResult run_matmul_p4(ClusterConfig base, int nodes);
AppResult run_matmul_ncs(ClusterConfig base, int nodes, NcsTier tier = NcsTier::nsm_p4,
                         int threads_per_node = 2);

// --- JPEG compression/decompression pipeline (Table 2; Figs 17/18) ---
// `nodes` must be even: the first half compresses, the second half
// decompresses.
AppResult run_jpeg_p4(ClusterConfig base, int nodes);
AppResult run_jpeg_ncs(ClusterConfig base, int nodes, NcsTier tier = NcsTier::nsm_p4);

// --- Distributed DIF FFT (Table 3; Figs 19-21) ---
AppResult run_fft_p4(ClusterConfig base, int nodes);
AppResult run_fft_ncs(ClusterConfig base, int nodes, NcsTier tier = NcsTier::nsm_p4);

// --- Collective-API variants (src/coll) ---
// SPMD over `nodes` processes — no separate host rank: rank 0 owns the
// input and result, distribution is scatter/bcast, collection is gather,
// and the algorithm behind each call (flat, binomial tree, dissemination,
// recursive doubling, pipelined ring) is autoselected per call by
// coll::select from the group and payload size (ClusterConfig::ncs.coll
// overrides). Default tier is HSM/ATM — the group plane the collectives
// target. `nodes` may be 1 (every collective degenerates to the identity).
AppResult run_matmul_coll(ClusterConfig base, int nodes, NcsTier tier = NcsTier::hsm_atm);
// jpeg_coll additionally allreduces the per-strip round-trip squared error
// so every rank holds the global PSNR (many-to-many reduction in anger).
AppResult run_jpeg_coll(ClusterConfig base, int nodes, NcsTier tier = NcsTier::hsm_atm);
// fft_coll needs power-of-two `nodes` (one global FFT thread per process).
AppResult run_fft_coll(ClusterConfig base, int nodes, NcsTier tier = NcsTier::hsm_atm);

}  // namespace ncs::cluster
