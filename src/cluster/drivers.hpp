// Distributed application drivers — the paper's Section 5 experiments.
//
// Each application exists in two structurally-matched variants:
//   *_p4  : plain p4, one thread per process (the paper's baseline,
//           Figs 13, 19).
//   *_ncs : NCS_MTS/p4 with `threads_per_node` compute threads per node
//           process (the paper's multithreaded versions, Figs 14, 17/18,
//           20/21). The host is rank 0 in both variants.
//
// Every run performs the real computation on real data and verifies the
// distributed result against a sequential reference — the verification
// happens outside simulated time and is reported in AppResult::correct.
//
// Pass a preset from config.hpp (sun_ethernet / sun_atm_lan / nynet_wan);
// the driver overrides n_procs with nodes+1 (host + node processes).
#pragma once

#include "cluster/cluster.hpp"

namespace ncs::cluster {

struct AppResult {
  Duration elapsed;
  bool correct = false;
};

/// Which NCS tier the *_ncs drivers bind (the paper evaluates NSM).
enum class NcsTier { nsm_p4, hsm_atm };

// --- Matrix multiplication (Table 1; Figs 13/14) ---
AppResult run_matmul_p4(ClusterConfig base, int nodes);
AppResult run_matmul_ncs(ClusterConfig base, int nodes, NcsTier tier = NcsTier::nsm_p4,
                         int threads_per_node = 2);

// --- JPEG compression/decompression pipeline (Table 2; Figs 17/18) ---
// `nodes` must be even: the first half compresses, the second half
// decompresses.
AppResult run_jpeg_p4(ClusterConfig base, int nodes);
AppResult run_jpeg_ncs(ClusterConfig base, int nodes, NcsTier tier = NcsTier::nsm_p4);

// --- Distributed DIF FFT (Table 3; Figs 19-21) ---
AppResult run_fft_p4(ClusterConfig base, int nodes);
AppResult run_fft_ncs(ClusterConfig base, int nodes, NcsTier tier = NcsTier::nsm_p4);

}  // namespace ncs::cluster
