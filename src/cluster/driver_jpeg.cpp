#include <cmath>
#include <span>

#include "apps/image.hpp"
#include "apps/jpeg/codec.hpp"
#include "cluster/compute.hpp"
#include "cluster/drivers.hpp"
#include "common/assert.hpp"

namespace ncs::cluster {

namespace {

using apps::Image;
using apps::make_test_image;
using apps::pack_image;
using apps::psnr;
using apps::unpack_image;

constexpr int kTypeStrip = 20;
constexpr int kTypeCompressed = 21;
constexpr int kTypeBack = 22;

/// Messages carry the strip's first row so the master can place results
/// arriving in any order.
Bytes with_offset(int row_begin, BytesView payload) {
  Bytes out(4 + payload.size());
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(row_begin));
  w.bytes(payload);
  return out;
}

std::pair<int, BytesView> split_offset(BytesView data) {
  ByteReader r(data);
  const int row = static_cast<int>(r.u32());
  return {row, r.bytes(r.remaining())};
}

/// Paste `strip` into `out` starting at `row_begin`.
void paste(Image& out, const Image& strip, int row_begin) {
  NCS_ASSERT(strip.width == out.width);
  NCS_ASSERT(row_begin + strip.height <= out.height);
  std::copy(strip.pixels.begin(), strip.pixels.end(),
            out.pixels.begin() + static_cast<std::ptrdiff_t>(row_begin) * out.width);
}

double compress_cycles(const Image& img) {
  return static_cast<double>(img.pixels.size()) *
         calibration().jpeg_compress_cycles_per_pixel;
}

double decompress_cycles(std::size_t pixels) {
  return static_cast<double>(pixels) * calibration().jpeg_decompress_cycles_per_pixel;
}

/// Cost of the master reading the image from disk (stage 0 of the paper's
/// five-stage pipeline).
double read_cycles(const Image& img) { return static_cast<double>(img.pixels.size()) * 2.0; }

}  // namespace

AppResult run_jpeg_p4(ClusterConfig base, int nodes) {
  const Calibration& cal = calibration();
  NCS_ASSERT(nodes >= 2 && nodes % 2 == 0);
  const int compressors = nodes / 2;
  NCS_ASSERT(cal.jpeg_height % compressors == 0);
  base.n_procs = nodes + 1;
  Cluster cluster(std::move(base));
  p4::Runtime& rt = cluster.init_p4();

  const Image original = make_test_image(cal.jpeg_width, cal.jpeg_height, 7);
  Image reconstructed;
  reconstructed.width = original.width;
  reconstructed.height = original.height;
  reconstructed.pixels.assign(original.pixels.size(), 0);
  const int strip_rows = cal.jpeg_height / compressors;

  const Duration elapsed = cluster.run([&](int rank) {
    p4::Process& p = rt.process(rank);
    if (rank == 0) {
      // Stage 1: read + distribute the uncompressed image.
      charge_compute(p.host(), read_cycles(original));
      for (int i = 1; i <= compressors; ++i) {
        const int row = (i - 1) * strip_rows;
        p.send(kTypeStrip, i, with_offset(row, pack_image(original.strip(row, row + strip_rows))));
      }
      // Stage 5: collect + combine decompressed strips.
      for (int k = 0; k < compressors; ++k) {
        int type = kTypeBack;
        int from = p4::kAnyProc;
        const Bytes data = p.recv(&type, &from);
        const auto [row, payload] = split_offset(data);
        paste(reconstructed, unpack_image(payload), row);
      }
    } else if (rank <= compressors) {
      // Stage 2: compress.
      int type = kTypeStrip;
      int from = 0;
      const Bytes data = p.recv(&type, &from);
      const auto [row, payload] = split_offset(data);
      const Image strip = unpack_image(payload);
      charge_compute(p.host(), compress_cycles(strip));
      const Bytes stream = apps::jpeg::compress(strip);
      // Stage 3: ship compressed data to the partner decompressor.
      p.send(kTypeCompressed, rank + compressors, with_offset(row, stream));
    } else {
      // Stage 4: decompress and return.
      int type = kTypeCompressed;
      int from = rank - compressors;
      const Bytes data = p.recv(&type, &from);
      const auto [row, payload] = split_offset(data);
      const Image strip = apps::jpeg::decompress(payload);
      charge_compute(p.host(), decompress_cycles(strip.pixels.size()));
      p.send(kTypeBack, 0, with_offset(row, pack_image(strip)));
    }
  });

  AppResult result{elapsed, false};
  result.correct = psnr(original, reconstructed) > 30.0;
  result.result_hash = fnv1a(reconstructed.pixels.data(),
                             reconstructed.pixels.size() * sizeof(reconstructed.pixels[0]));
  fill_runtime_stats(cluster, result);
  return result;
}

AppResult run_jpeg_ncs(ClusterConfig base, int nodes, NcsTier tier) {
  const Calibration& cal = calibration();
  NCS_ASSERT(nodes >= 2 && nodes % 2 == 0);
  const int compressors = nodes / 2;
  constexpr int kTpn = 2;  // threads per node process (paper Section 5.2)
  NCS_ASSERT(cal.jpeg_height % (compressors * kTpn) == 0);
  base.n_procs = nodes + 1;
  Cluster cluster(std::move(base));
  if (tier == NcsTier::nsm_p4) {
    cluster.init_ncs_nsm();
  } else {
    cluster.init_ncs_hsm();
  }

  const Image original = make_test_image(cal.jpeg_width, cal.jpeg_height, 7);
  Image reconstructed;
  reconstructed.width = original.width;
  reconstructed.height = original.height;
  reconstructed.pixels.assign(original.pixels.size(), 0);
  const int half_rows = cal.jpeg_height / (compressors * kTpn);

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);

    if (rank == 0) {
      // Host (paper Fig 17): thread 0 reads the image, unblocks thread 1,
      // distributes its half-strips and collects every decompressed piece;
      // thread 1 distributes the other halves as soon as the read is done.
      auto image_read = std::make_shared<mts::Event>(node.host());
      std::vector<int> tids(kTpn);
      for (int t = 0; t < kTpn; ++t) {
        tids[static_cast<std::size_t>(t)] = node.t_create([&, t, image_read] {
          if (t == 0) {
            charge_compute(node.host(), read_cycles(original));
            image_read->set();  // NCS_unblock(tid2) in the paper
          } else {
            image_read->wait();  // NCS_block() in the paper
          }
          for (int i = 1; i <= compressors; ++i) {
            const int slice = (i - 1) * kTpn + t;
            const int row = slice * half_rows;
            node.send(t, t, i,
                      with_offset(row, pack_image(original.strip(row, row + half_rows))));
          }
          if (t == 0) {
            for (int k = 0; k < compressors * kTpn; ++k) {
              const Bytes data = node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
              const auto [row, payload] = split_offset(data);
              paste(reconstructed, unpack_image(payload), row);
            }
          }
        }, mts::kDefaultPriority, "host-t" + std::to_string(t));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    } else if (rank <= compressors) {
      std::vector<int> tids(kTpn);
      for (int t = 0; t < kTpn; ++t) {
        tids[static_cast<std::size_t>(t)] = node.t_create([&, t, rank] {
          const Bytes data = node.recv(t, 0, t);
          const auto [row, payload] = split_offset(data);
          const Image strip = unpack_image(payload);
          charge_compute(node.host(), compress_cycles(strip));
          const Bytes stream = apps::jpeg::compress(strip);
          node.send(t, t, rank + compressors, with_offset(row, stream));
        }, mts::kDefaultPriority, "compress" + std::to_string(t));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    } else {
      std::vector<int> tids(kTpn);
      for (int t = 0; t < kTpn; ++t) {
        tids[static_cast<std::size_t>(t)] = node.t_create([&, t, rank] {
          const Bytes data = node.recv(t, rank - compressors, t);
          const auto [row, payload] = split_offset(data);
          const Image strip = apps::jpeg::decompress(payload);
          charge_compute(node.host(), decompress_cycles(strip.pixels.size()));
          node.send(t, 0, 0, with_offset(row, pack_image(strip)));
        }, mts::kDefaultPriority, "decompress" + std::to_string(t));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    }
  });

  AppResult result{elapsed, false};
  result.correct = psnr(original, reconstructed) > 30.0;
  result.result_hash = fnv1a(reconstructed.pixels.data(),
                             reconstructed.pixels.size() * sizeof(reconstructed.pixels[0]));
  fill_runtime_stats(cluster, result);
  return result;
}

AppResult run_jpeg_coll(ClusterConfig base, int nodes, NcsTier tier) {
  const Calibration& cal = calibration();
  NCS_ASSERT(nodes >= 1 && cal.jpeg_height % nodes == 0);
  base.n_procs = nodes;
  Cluster cluster(std::move(base));
  if (tier == NcsTier::nsm_p4) {
    cluster.init_ncs_nsm();
  } else {
    cluster.init_ncs_hsm();
  }

  const Image original = make_test_image(cal.jpeg_width, cal.jpeg_height, 7);
  Image reconstructed;
  reconstructed.width = original.width;
  reconstructed.height = original.height;
  reconstructed.pixels.assign(original.pixels.size(), 0);
  const int strip_rows = cal.jpeg_height / nodes;
  double distributed_psnr = 0.0;

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);

    // Rank 0 reads and scatters the strips; every rank round-trips its own
    // strip through the codec (both pipeline stages charged locally) and
    // the decompressed pieces converge back by gather.
    std::vector<Bytes> strips;
    if (rank == 0) {
      charge_compute(node.host(), read_cycles(original));
      for (int i = 0; i < nodes; ++i) {
        const int row = i * strip_rows;
        strips.push_back(pack_image(original.strip(row, row + strip_rows)));
      }
    }
    const Image strip = unpack_image(node.scatter(0, strips));
    charge_compute(node.host(), compress_cycles(strip));
    const Bytes stream = apps::jpeg::compress(strip);
    const Image back = apps::jpeg::decompress(stream);
    charge_compute(node.host(), decompress_cycles(back.pixels.size()));

    const auto gathered = node.gather(0, pack_image(back));
    if (rank == 0) {
      for (int i = 0; i < nodes; ++i)
        paste(reconstructed, unpack_image(gathered[static_cast<std::size_t>(i)]),
              i * strip_rows);
    }

    // Distributed quality check: each rank's round-trip squared error,
    // allreduced so every rank can compute the whole image's PSNR.
    double sse = 0.0;
    for (std::size_t i = 0; i < strip.pixels.size(); ++i) {
      const double d = static_cast<double>(strip.pixels[i]) - static_cast<double>(back.pixels[i]);
      sse += d * d;
    }
    const auto total = node.allreduce_sum(std::span<const double>(&sse, 1));
    const double mse = total[0] / static_cast<double>(original.pixels.size());
    const double quality =
        mse <= 0.0 ? 100.0 : 10.0 * std::log10(255.0 * 255.0 / mse);
    if (rank == 0) distributed_psnr = quality;
  });

  AppResult result{elapsed, false};
  result.correct = psnr(original, reconstructed) > 30.0 && distributed_psnr > 30.0;
  result.result_hash = fnv1a(reconstructed.pixels.data(),
                             reconstructed.pixels.size() * sizeof(reconstructed.pixels[0]));
  fill_runtime_stats(cluster, result);
  return result;
}

}  // namespace ncs::cluster
