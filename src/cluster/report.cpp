#include "cluster/report.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace ncs::cluster {

namespace {

void line(std::string& out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

std::string report(Cluster& cluster) {
  std::string out;
  line(out, "=== run report: %s, %d processes, clock %s ===",
       cluster.config().name.c_str(), cluster.n_procs(),
       cluster.engine().now().to_string().c_str());
  line(out, "engine: %llu events processed",
       static_cast<unsigned long long>(cluster.engine().processed()));

  line(out, "%-5s %10s %11s %11s %11s", "host", "dispatches", "cpu-busy", "overhead",
       "threads");
  for (int r = 0; r < cluster.n_procs(); ++r) {
    const auto& s = cluster.host(r).stats();
    line(out, "p%-4d %10llu %10.3fs %10.3fs %11llu", r,
         static_cast<unsigned long long>(s.dispatches), s.cpu_busy.sec(), s.overhead.sec(),
         static_cast<unsigned long long>(s.spawns));
    // Per-core breakdown for multi-core hosts, including where work came
    // from (steals, on-demand migrations).
    if (cluster.host(r).n_cores() > 1) {
      for (int c = 0; c < cluster.host(r).n_cores(); ++c) {
        const auto& cs = cluster.host(r).core_stats(c);
        line(out, "  c%-3d %10llu %10.3fs %10.3fs  steals %llu/%llu migr %llu", c,
             static_cast<unsigned long long>(cs.dispatches), cs.cpu_busy.sec(),
             cs.overhead.sec(), static_cast<unsigned long long>(cs.steals_in),
             static_cast<unsigned long long>(cs.steals_out),
             static_cast<unsigned long long>(cs.migrations_in));
      }
    }
  }

  if (cluster.has_ncs()) {
    line(out, "%-5s %7s %7s %7s %9s %9s %7s %7s", "node", "sends", "recvs", "bcasts",
         "tx-bytes", "rx-bytes", "acks", "local");
    for (int r = 0; r < cluster.n_procs(); ++r) {
      const auto& s = cluster.node(r).stats();
      line(out, "p%-4d %7llu %7llu %7llu %9llu %9llu %7llu %7llu", r,
           static_cast<unsigned long long>(s.sends), static_cast<unsigned long long>(s.recvs),
           static_cast<unsigned long long>(s.bcasts),
           static_cast<unsigned long long>(s.bytes_sent),
           static_cast<unsigned long long>(s.bytes_received),
           static_cast<unsigned long long>(s.acks_sent),
           static_cast<unsigned long long>(s.local_deliveries));
    }
    std::uint64_t stalls = 0, retx = 0, give_ups = 0;
    for (int r = 0; r < cluster.n_procs(); ++r) {
      stalls += cluster.node(r).flow_control().stats().window_stalls;
      retx += cluster.node(r).error_control().stats().retransmits;
      give_ups += cluster.node(r).error_control().stats().give_ups;
    }
    line(out, "flow-control stalls %llu, retransmissions %llu, give-ups %llu",
         static_cast<unsigned long long>(stalls), static_cast<unsigned long long>(retx),
         static_cast<unsigned long long>(give_ups));
  }

  if (cluster.has_coll_offload()) {
    std::uint64_t combines = 0, forwards = 0, completions = 0, rearms = 0,
                  fallbacks = 0, late = 0;
    for (int r = 0; r < cluster.n_procs(); ++r) {
      const auto& es = cluster.coll_port(r).engine().stats();
      const auto& ps = cluster.coll_port(r).stats();
      combines += es.combines;
      forwards += es.forwards;
      completions += es.completions;
      late += es.late_drops;
      rearms += ps.rearms;
      fallbacks += ps.fallbacks;
    }
    line(out,
         "nic-coll: %llu firmware combines, %llu forwards, %llu completions, "
         "%llu re-arms, %llu host fallbacks, %llu late drops",
         static_cast<unsigned long long>(combines),
         static_cast<unsigned long long>(forwards),
         static_cast<unsigned long long>(completions),
         static_cast<unsigned long long>(rearms),
         static_cast<unsigned long long>(fallbacks),
         static_cast<unsigned long long>(late));
  }

  if (cluster.has_p4()) {
    const auto tcp = cluster.p4().mesh().total_stats();
    line(out,
         "tcp: %llu data segments, %llu acks (%llu delayed), %llu retransmits, "
         "%llu nagle holds, %llu bytes delivered",
         static_cast<unsigned long long>(tcp.data_segments),
         static_cast<unsigned long long>(tcp.acks_sent),
         static_cast<unsigned long long>(tcp.acks_delayed),
         static_cast<unsigned long long>(tcp.retransmits),
         static_cast<unsigned long long>(tcp.nagle_holds),
         static_cast<unsigned long long>(tcp.bytes_delivered));
  }

  if (ether::Bus* bus = cluster.ethernet(); bus != nullptr) {
    const auto& s = bus->stats();
    line(out, "ethernet: %llu frames, %llu payload bytes, %llu contention events (%s lost)",
         static_cast<unsigned long long>(s.frames),
         static_cast<unsigned long long>(s.payload_bytes),
         static_cast<unsigned long long>(s.contention_events),
         s.contention_delay.to_string().c_str());
  }

  if (atm::AtmFabric* fabric = cluster.atm_fabric(); fabric != nullptr) {
    std::uint64_t tx_cells = 0, rx_errors = 0;
    for (int h = 0; h < fabric->n_hosts(); ++h) {
      tx_cells += fabric->nic(h).stats().tx_cells;
      rx_errors += fabric->nic(h).stats().rx_errors;
    }
    line(out, "atm: %llu cells transmitted (%0.2f MB on the wire), %llu reassembly errors",
         static_cast<unsigned long long>(tx_cells),
         static_cast<double>(tx_cells) * atm::Cell::kSize / 1e6,
         static_cast<unsigned long long>(rx_errors));
  }

  return out;
}

namespace {

void write_profile_section(Cluster& cluster, obs::JsonWriter& w) {
  const obs::Profiler& prof = *cluster.profiler();
  w.key("profile").begin_object();
  prof.write_json(w);
  w.field("bottleneck", std::string_view(prof.bottleneck_summary()));

  w.key("threads").begin_array();
  for (const obs::ThreadUsage& u : obs::fold_threads(cluster.timeline())) {
    w.begin_object();
    w.field("track", std::string_view(u.track));
    w.field("compute_sec", u.activity(sim::Activity::compute).sec());
    w.field("communicate_sec", u.activity(sim::Activity::communicate).sec());
    w.field("overhead_sec", u.activity(sim::Activity::overhead).sec());
    w.field("idle_sec", u.activity(sim::Activity::idle).sec());
    w.field("span_sec", u.span.sec());
    w.end_object();
  }
  w.end_array();

  w.key("hosts").begin_array();
  for (const obs::HostUsage& u : obs::fold_hosts(cluster.timeline())) {
    w.begin_object();
    w.field("host", std::string_view(u.host));
    w.field("compute_sec", u.compute.sec());
    w.field("communicate_sec", u.communicate.sec());
    w.field("overhead_sec", u.overhead.sec());
    w.field("overlapped_sec", u.overlapped.sec());
    w.field("idle_sec", u.idle.sec());
    w.field("span_sec", u.span.sec());
    w.field("overlap_ratio", u.overlap_ratio());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string report_json_impl(Cluster& cluster, const Duration* makespan) {
  const bool profiled = cluster.profiler() != nullptr;
  obs::JsonWriter w;
  w.begin_object();
  // v2 = v1 + the "profile" section; v3 = profile histograms carry p999_us
  // and telemetry runs add the "telemetry" section (windowed quantile
  // series, gauges, SLO grades). Consumers of v1 keep working either way;
  // the schema string says which sections are present.
  w.field("schema", profiled ? "ncs-run-report-v3" : "ncs-run-report-v1");
  w.field("config", std::string_view(cluster.config().name));
  w.field("n_procs", cluster.n_procs());
  w.field("clock_sec", cluster.engine().now().sec());
  w.field("engine_events", cluster.engine().processed());
  if (makespan != nullptr) w.field("makespan_sec", makespan->sec());
  if (profiled) write_profile_section(cluster, w);
  if (cluster.telemetry() != nullptr) {
    w.key("telemetry").begin_object();
    cluster.telemetry()->write_json(w);
    w.end_object();
  }
  if (cluster.recorder() != nullptr) {
    const obs::FlightRecorder& fr = *cluster.recorder();
    w.key("flight_recorder").begin_object();
    w.field("entries_recorded", fr.entries_recorded());
    w.field("triggers", fr.triggers());
    w.field("dumps", fr.dumps());
    w.end_object();
  }
  cluster.metrics().write_json(w);
  w.end_object();
  return std::move(w).str();
}

}  // namespace

std::string report_json(Cluster& cluster) { return report_json_impl(cluster, nullptr); }

std::string report_json(Cluster& cluster, Duration makespan) {
  return report_json_impl(cluster, &makespan);
}

std::string bottleneck_report(Cluster& cluster) {
  const obs::Profiler* prof = cluster.profiler();
  if (prof == nullptr) return "bottleneck report: run was not profiled (--prof)\n";

  std::string out;
  line(out, "=== bottleneck report: %s ===", cluster.config().name.c_str());
  line(out, "%s", prof->bottleneck_summary().c_str());

  const auto us = [](std::int64_t ps) { return static_cast<double>(ps) * 1e-6; };
  const double e2e_sum = static_cast<double>(prof->hist(obs::Layer::end_to_end).sum());
  line(out, "%-16s %8s %10s %10s %10s %10s %7s", "layer", "count", "p50-us",
       "p99-us", "p99.9-us", "max-us", "share");
  for (int i = 0; i < obs::kLayerCount; ++i) {
    const auto layer = static_cast<obs::Layer>(i);
    const obs::Histogram& h = prof->hist(layer);
    if (h.count() == 0) continue;
    // Share of end-to-end is meaningful only for the lifecycle legs, which
    // partition it; auxiliary layers overlap the legs and get a dash.
    char share[16] = "-";
    if (i <= static_cast<int>(obs::Layer::end_to_end) && e2e_sum > 0.0)
      std::snprintf(share, sizeof share, "%.0f%%",
                    static_cast<double>(h.sum()) / e2e_sum * 100.0);
    line(out, "%-16s %8llu %10.1f %10.1f %10.1f %10.1f %7s", obs::to_string(layer),
         static_cast<unsigned long long>(h.count()), us(h.quantile(0.5)),
         us(h.quantile(0.99)), us(h.quantile(0.999)), us(h.max()), share);
  }

  if (!prof->coll_hists().empty()) {
    // Per-algorithm collective latency: where the group-communication time
    // went, keyed "op/algorithm" by the coll::Engine.
    line(out, "%-28s %8s %10s %10s %10s", "collective", "count", "p50-us", "p99-us",
         "max-us");
    for (const auto& [key, h] : prof->coll_hists()) {
      line(out, "%-28s %8llu %10.1f %10.1f %10.1f", key.c_str(),
           static_cast<unsigned long long>(h.count()), us(h.quantile(0.5)),
           us(h.quantile(0.99)), us(h.max()));
    }
  }

  if (!prof->proto_time_hists().empty() || !prof->proto_count_hists().empty()) {
    // Protocol-engine internals: handshake latency in microseconds, batch
    // occupancy (and other counts) as raw values.
    line(out, "%-28s %8s %10s %10s %10s", "proto", "count", "p50", "p99", "max");
    for (const auto& [key, h] : prof->proto_time_hists()) {
      line(out, "%-28s %8llu %8.1fus %8.1fus %8.1fus", key.c_str(),
           static_cast<unsigned long long>(h.count()), us(h.quantile(0.5)),
           us(h.quantile(0.99)), us(h.max()));
    }
    for (const auto& [key, h] : prof->proto_count_hists()) {
      line(out, "%-28s %8llu %10.1f %10.1f %10.1f", key.c_str(),
           static_cast<unsigned long long>(h.count()),
           static_cast<double>(h.quantile(0.5)), static_cast<double>(h.quantile(0.99)),
           static_cast<double>(h.max()));
    }
  }

  if (!prof->core_hists().empty()) {
    // Per-core dispatch queue wait (multi-core hosts): which cores work
    // waited behind, keyed "<host>/c<index>" by the scheduler.
    line(out, "%-28s %8s %10s %10s %10s", "core-dispatch", "count", "p50-us",
         "p99-us", "max-us");
    for (const auto& [key, h] : prof->core_hists()) {
      line(out, "%-28s %8llu %10.1f %10.1f %10.1f", key.c_str(),
           static_cast<unsigned long long>(h.count()), us(h.quantile(0.5)),
           us(h.quantile(0.99)), us(h.max()));
    }
  }

  if (!prof->rma_hists().empty()) {
    // One-sided latency by operation kind (post -> completion).
    line(out, "%-28s %8s %10s %10s %10s", "rma", "count", "p50-us", "p99-us",
         "max-us");
    for (const auto& [key, h] : prof->rma_hists()) {
      line(out, "%-28s %8llu %10.1f %10.1f %10.1f", key.c_str(),
           static_cast<unsigned long long>(h.count()), us(h.quantile(0.5)),
           us(h.quantile(0.99)), us(h.max()));
    }
  }

  line(out, "%-5s %10s %12s %11s %9s %8s", "host", "compute", "communicate",
       "overlapped", "idle", "overlap");
  for (const obs::HostUsage& u : obs::fold_hosts(cluster.timeline())) {
    line(out, "%-5s %9.3fs %11.3fs %10.3fs %8.3fs %7.0f%%", u.host.c_str(),
         u.compute.sec(), u.communicate.sec(), u.overlapped.sec(), u.idle.sec(),
         u.overlap_ratio() * 100.0);
  }
  return out;
}

}  // namespace ncs::cluster
