#include "cluster/cluster.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "atm/network.hpp"
#include "cluster/report.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/mps/atm_transport.hpp"
#include "core/mps/p4_transport.hpp"

namespace ncs::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), engine_(config_.queue) {
  NCS_ASSERT(config_.n_procs >= 1);

  for (int r = 0; r < config_.n_procs; ++r) {
    mts::SchedulerParams sp;
    sp.name = "p" + std::to_string(r);
    sp.cpu_mhz = config_.cpu_mhz;
    sp.context_switch_cost = config_.context_switch_cost;
    sp.thread_create_cost = config_.thread_create_cost;
    sp.smp.n_cores = config_.cores;
    sp.smp.steal = config_.steal;
    sp.smp.progress = config_.progress;
    sp.smp.poll_quantum = config_.poll_quantum;
    // Per-rank seed offset so hosts don't share victim permutations.
    sp.smp.steal_seed =
        config_.steal_seed + static_cast<std::uint64_t>(r) * 0x9E3779B97F4A7C15;
    hosts_.push_back(std::make_unique<mts::Scheduler>(engine_, sp));
  }

  switch (config_.network) {
    case NetworkKind::ethernet:
      bus_ = std::make_unique<ether::Bus>(engine_, config_.bus, config_.n_procs);
      break;
    case NetworkKind::atm_lan: {
      atm::LanConfig lc;
      lc.n_hosts = config_.n_procs;
      lc.nic = config_.nic;
      lc.host_link = config_.host_link;
      lc.sw = config_.sw;
      fabric_ = std::make_unique<atm::AtmLan>(engine_, lc);
      break;
    }
    case NetworkKind::atm_wan: {
      atm::WanConfig wc;
      wc.n_hosts = config_.n_procs;
      wc.nic = config_.nic;
      wc.host_link = config_.host_link;
      wc.backbone = config_.wan_backbone;
      wc.sw = config_.sw;
      if (config_.n_procs < 2) {
        // A one-host "WAN" degenerates to a LAN star.
        atm::LanConfig lc;
        lc.n_hosts = config_.n_procs;
        lc.nic = config_.nic;
        lc.host_link = config_.host_link;
        lc.sw = config_.sw;
        fabric_ = std::make_unique<atm::AtmLan>(engine_, lc);
      } else {
        fabric_ = std::make_unique<atm::AtmWan>(engine_, wc);
      }
      break;
    }
    case NetworkKind::atm_wan_multi: {
      atm::MultiWanConfig mc;
      mc.n_hosts = config_.n_procs;
      mc.n_sites = std::min(config_.wan_sites, config_.n_procs);
      mc.nic = config_.nic;
      mc.host_link = config_.host_link;
      mc.backbone = config_.wan_backbone;
      mc.sw = config_.sw;
      mc.provision = config_.wan_provision;
      fabric_ = std::make_unique<atm::AtmMultiWan>(engine_, mc);
      break;
    }
  }

  // Fault injector, pre-wired to every physical element. A host pause is
  // realised as a top-priority thread that owns the CPU until resume time:
  // nothing else dispatches, but the network (and NIC DMA) keeps moving —
  // exactly what a stalled workstation looks like from the wire.
  injector_ = std::make_unique<fault::FaultInjector>(engine_);
  if (bus_ != nullptr) injector_->attach_link("ether", &bus_->fault());
  if (fabric_ != nullptr) {
    fabric_->for_each_link(
        [this](net::Link& l) { injector_->attach_link(l.name(), &l.fault()); });
    fabric_->for_each_switch(
        [this](atm::Switch& s) { injector_->attach_switch(s.name(), &s.fault()); });
    for (int r = 0; r < config_.n_procs; ++r)
      injector_->attach_nic("nic" + std::to_string(r), &fabric_->nic(r).fault());
  }
  for (int r = 0; r < config_.n_procs; ++r) {
    host_faults_.push_back(std::make_unique<fault::HostFault>());
    fault::HostFault* hf = host_faults_.back().get();
    mts::Scheduler* sched = hosts_[static_cast<std::size_t>(r)].get();
    hf->set_pause_handler([sched](TimePoint resume_at) {
      // One pinned pauser per core: a paused workstation stalls every
      // core, not just the one the planes happen to run on. With one core
      // this spawns exactly the single thread it always did.
      for (int c = 0; c < sched->n_cores(); ++c) {
        sched->spawn(
            [sched, resume_at] {
              const TimePoint now = sched->engine().now();
              if (resume_at > now)
                sched->charge(resume_at - now, sim::Activity::overhead);
            },
            {.name = c == 0 ? "fault-pause" : "fault-pause" + std::to_string(c),
             .priority = mts::kHighestPriority,
             .cls = mts::ThreadClass::system,
             .affinity = c});
      }
    });
    injector_->attach_host("p" + std::to_string(r), hf);
  }

  if (!config_.trace_path.empty()) enable_trace();
  if (config_.profile) enable_profiling();
  if (config_.telemetry || !config_.recorder_path.empty()) enable_telemetry();
}

Cluster::~Cluster() {
  for (auto& n : nodes_) api::unregister_node(n.get());
}

void Cluster::enable_timeline() {
  timeline_enabled_ = true;
  for (auto& h : hosts_) h->set_timeline(&timeline_);
}

void Cluster::enable_trace() {
  trace_enabled_ = true;
  for (auto& h : hosts_) h->set_trace(&trace_);
  if (fabric_ != nullptr) {
    for (int r = 0; r < config_.n_procs; ++r)
      fabric_->nic(r).set_trace(&trace_, "p" + std::to_string(r) + "/nic");
    if (auto* lan = dynamic_cast<atm::AtmLan*>(fabric_.get()); lan != nullptr) {
      lan->fabric().set_trace(&trace_, trace_.track("switch"));
    } else if (auto* wan = dynamic_cast<atm::AtmWan*>(fabric_.get()); wan != nullptr) {
      for (int s = 0; s < 2; ++s)
        wan->site_switch(s).set_trace(&trace_, trace_.track("switch" + std::to_string(s)));
    } else if (auto* mwan = dynamic_cast<atm::AtmMultiWan*>(fabric_.get()); mwan != nullptr) {
      for (int s = 0; s < mwan->n_sites(); ++s)
        mwan->site_switch(s).set_trace(&trace_, trace_.track("switch" + std::to_string(s)));
    }
  }
  injector_->set_trace(&trace_);
  // Runtime modules created later (nodes, TCP mesh) attach in init_*.
}

void Cluster::enable_profiling() {
  if (profiler_ != nullptr) return;
  profiler_ = std::make_unique<obs::Profiler>();
  // The overlap fold needs activity intervals; one shared profiler is safe
  // because every host runs on the same deterministic engine clock.
  enable_timeline();
  for (auto& h : hosts_) h->set_profiler(profiler_.get());
  if (fabric_ != nullptr) {
    for (int r = 0; r < config_.n_procs; ++r)
      fabric_->nic(r).set_profiler(profiler_.get());
  }
  // Runtime modules created later (nodes) attach in init_*.
  for (auto& n : nodes_) n->set_profiler(profiler_.get());
}

void Cluster::enable_telemetry() {
  if (telemetry_ != nullptr) return;
  config_.telemetry = true;
  enable_profiling();
  telemetry_ = std::make_unique<obs::TelemetrySampler>(engine_, config_.telemetry_cfg);
  recorder_ =
      std::make_unique<obs::FlightRecorder>(config_.telemetry_cfg.recorder_capacity);
  if (!config_.recorder_path.empty()) recorder_->arm(config_.recorder_path);
  if (trace_enabled_) {
    telemetry_->set_trace(&trace_);
    recorder_->set_trace(&trace_);
  }
  // Every rank's end-to-end fold lands in one cluster-wide sketch (the
  // profiler is cluster-wide already); RMA completions likewise.
  profiler_->set_latency_sketch(&telemetry_->sketch("mps/e2e"));
  profiler_->set_recorder(recorder_.get());
  injector_->set_recorder(recorder_.get());
  // Runtime modules created later attach in init_*.
  for (auto& n : nodes_) n->set_recorder(recorder_.get());
  for (auto& e : rma_engines_)
    e->set_latency_sketch(&telemetry_->sketch("rma/op"));
}

bool Cluster::write_trace(const std::string& path) {
  NCS_ASSERT_MSG(trace_enabled_, "write_trace without enable_trace");
  if (timeline_enabled_) trace_.import_timeline(timeline_);
  return trace_.write_file(path);
}

obs::MetricsRegistry& Cluster::metrics() {
  if (metrics_ == nullptr) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    obs::MetricsRegistry& reg = *metrics_;
    for (int r = 0; r < config_.n_procs; ++r)
      host(r).register_metrics(reg, "p" + std::to_string(r) + "/mts");
    for (const auto& node : nodes_)
      node->register_metrics(reg, "p" + std::to_string(node->rank()) + "/mps");
    if (bus_ != nullptr) bus_->register_metrics(reg, "ether");
    if (fabric_ != nullptr) {
      for (int r = 0; r < config_.n_procs; ++r)
        fabric_->nic(r).register_metrics(reg, "p" + std::to_string(r) + "/nic");
      if (auto* lan = dynamic_cast<atm::AtmLan*>(fabric_.get()); lan != nullptr) {
        lan->fabric().register_metrics(reg, "switch");
      } else if (auto* wan = dynamic_cast<atm::AtmWan*>(fabric_.get()); wan != nullptr) {
        for (int s = 0; s < 2; ++s)
          wan->site_switch(s).register_metrics(reg, "switch" + std::to_string(s));
      } else if (auto* mwan = dynamic_cast<atm::AtmMultiWan*>(fabric_.get());
                 mwan != nullptr) {
        for (int s = 0; s < mwan->n_sites(); ++s)
          mwan->site_switch(s).register_metrics(reg, "switch" + std::to_string(s));
      }
    }
    for (auto& e : rma_engines_)
      e->register_metrics(reg, "p" + std::to_string(e->rank()) + "/rma");
    for (auto& p : coll_ports_)
      p->register_metrics(reg, "p" + std::to_string(p->rank()) + "/nic_coll");
    if (p4_ != nullptr) p4_->mesh().register_metrics(reg, "tcp");
    injector_->register_metrics(reg, "fault");
  }
  return *metrics_;
}

std::uint64_t Cluster::ncs_exception_count() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->stats().exceptions;
  return total;
}

p4::Runtime& Cluster::init_p4() {
  NCS_ASSERT_MSG(p4_ == nullptr, "runtime already initialized");
  if (config_.network == NetworkKind::ethernet) {
    segnet_ = std::make_unique<proto::EthernetSegmentNetwork>(*bus_, config_.n_procs);
  } else {
    segnet_ = std::make_unique<proto::AtmSegmentNetwork>(engine_, *fabric_);
  }
  std::vector<mts::Scheduler*> scheds;
  for (auto& h : hosts_) scheds.push_back(h.get());
  p4_ = std::make_unique<p4::Runtime>(engine_, scheds, *segnet_, config_.tcp, config_.costs);
  if (trace_enabled_) p4_->mesh().set_trace(&trace_, "tcp");
  return *p4_;
}

void Cluster::init_ncs_nsm() {
  init_p4();
  for (int r = 0; r < config_.n_procs; ++r) {
    auto transport = std::make_unique<mps::P4Transport>(p4_->process(r));
    nodes_.push_back(std::make_unique<mps::Node>(host(r), r, config_.n_procs,
                                                 std::move(transport), config_.ncs));
    if (trace_enabled_)
      nodes_.back()->set_trace(&trace_, "p" + std::to_string(r) + "/mps");
    if (profiler_ != nullptr) nodes_.back()->set_profiler(profiler_.get());
    if (recorder_ != nullptr) nodes_.back()->set_recorder(recorder_.get());
    api::register_node(nodes_.back().get());
  }
}

void Cluster::init_ncs_hsm() {
  NCS_ASSERT_MSG(config_.network != NetworkKind::ethernet,
                 "HSM requires an ATM fabric");
  NCS_ASSERT_MSG(p4_ == nullptr, "runtime already initialized");
  if (config_.hsm_use_svc) {
    auto* lan = dynamic_cast<atm::AtmLan*>(fabric_.get());
    NCS_ASSERT_MSG(lan != nullptr, "SVC provisioning needs the single-switch ATM LAN");
    call_controller_ = std::make_unique<atm::CallController>(engine_, *lan);
  }
  for (int r = 0; r < config_.n_procs; ++r) {
    mps::AtmTransport::Params tp;
    tp.chunk_size = config_.hsm_chunk;
    tp.costs = config_.costs;
    if (call_controller_ != nullptr) tp.signaling = &call_controller_->agent(r);
    auto transport = std::make_unique<mps::AtmTransport>(host(r), fabric_->nic(r), tp);
    nodes_.push_back(std::make_unique<mps::Node>(host(r), r, config_.n_procs,
                                                 std::move(transport), config_.ncs));
    if (trace_enabled_)
      nodes_.back()->set_trace(&trace_, "p" + std::to_string(r) + "/mps");
    if (profiler_ != nullptr) nodes_.back()->set_profiler(profiler_.get());
    if (recorder_ != nullptr) nodes_.back()->set_recorder(recorder_.get());
    api::register_node(nodes_.back().get());
    if (config_.rma_enabled) {
      rma_engines_.push_back(std::make_unique<rma::Engine>(
          host(r), fabric_->nic(r), r, config_.n_procs, config_.rma));
      if (trace_enabled_)
        rma_engines_.back()->set_trace(&trace_, "p" + std::to_string(r) + "/rma");
      if (profiler_ != nullptr) rma_engines_.back()->set_profiler(profiler_.get());
      if (telemetry_ != nullptr)
        rma_engines_.back()->set_latency_sketch(&telemetry_->sketch("rma/op"));
      nodes_.back()->set_rma(rma_engines_.back().get());
    }
    if (config_.ncs.coll.nic_offload) {
      atm::NicCollParams ncp = config_.nic_coll;
      ncp.radix = config_.ncs.coll.offload_radix;
      coll_ports_.push_back(
          std::make_unique<mps::NicCollPort>(*nodes_.back(), fabric_->nic(r), ncp));
      mps::NicCollPort* port = coll_ports_.back().get();
      if (trace_enabled_)
        port->engine().set_trace(&trace_, "p" + std::to_string(r) + "/nic_coll");
      if (profiler_ != nullptr) port->engine().set_profiler(profiler_.get());
      nodes_.back()->set_coll_offload(port);
    }
  }
}

void Cluster::bind_telemetry() {
  obs::TelemetrySampler& ts = *telemetry_;

  // Gauge probes over live module state (cheap reads, one sample per tick).
  for (int r = 0; r < config_.n_procs; ++r) {
    mts::Scheduler* sched = hosts_[static_cast<std::size_t>(r)].get();
    ts.probe("p" + std::to_string(r) + "/mts/runnable",
             [sched] { return static_cast<double>(sched->runnable_count()); });
    if (sched->n_cores() > 1) {
      for (int c = 0; c < sched->n_cores(); ++c) {
        ts.probe("p" + std::to_string(r) + "/mts/core" + std::to_string(c) + "/runnable",
                 [sched, c] { return static_cast<double>(sched->runnable_count_on(c)); });
      }
    }
  }
  for (auto& node : nodes_) {
    const mps::Node* n = node.get();
    ts.probe("p" + std::to_string(n->rank()) + "/mps/fc_outstanding",
             [n] { return static_cast<double>(n->flow_control().total_outstanding()); });
  }
  for (auto& eng : rma_engines_) {
    const rma::Engine* e = eng.get();
    const std::string p = "p" + std::to_string(e->rank());
    ts.probe(p + "/rma/credits_used",
             [e] { return static_cast<double>(e->credits_in_use()); });
    ts.probe(p + "/rma/pending", [e] { return static_cast<double>(e->pending()); });
  }
  for (auto& cp : coll_ports_) {
    const mps::NicCollPort* p = cp.get();
    ts.probe("p" + std::to_string(p->rank()) + "/nic_coll/contexts_open",
             [p] { return static_cast<double>(p->engine().pending_ops()); });
  }
  if (fabric_ != nullptr) {
    for (int r = 0; r < config_.n_procs; ++r) {
      const atm::Nic* nic = &fabric_->nic(r);
      ts.probe("p" + std::to_string(r) + "/nic/tx_buffers_in_use",
               [nic] { return static_cast<double>(nic->tx_buffers_in_use()); });
    }
  }
  ts.probe("engine/pending_events",
           [this] { return static_cast<double>(engine_.pending()); });

  // Configured SLOs; latency specs name their sketch ("mps/e2e", "rma/op").
  for (const obs::SloSpec& spec : config_.slos) {
    if (spec.kind == obs::SloKind::latency) {
      ts.slo().add_latency(spec, &ts.sketch(spec.sketch));
    } else if (!nodes_.empty()) {
      // A bare delivery spec grades the NCS plane: sends that completed
      // vs. exceptions raised.
      ts.slo().add_delivery(
          spec,
          [this] {
            std::uint64_t n = 0;
            for (const auto& node : nodes_) n += node->stats().sends;
            return n;
          },
          [this] {
            std::uint64_t n = 0;
            for (const auto& node : nodes_) n += node->stats().exceptions;
            return n;
          });
    }
  }
  // The NCS plane always carries a delivery objective when telemetry is
  // on: exceptions are the violations the paper's service class surfaces.
  if (!nodes_.empty()) {
    obs::SloSpec d;
    d.name = "mps/delivery";
    d.kind = obs::SloKind::delivery;
    d.target = 0.99;
    ts.slo().add_delivery(
        d,
        [this] {
          std::uint64_t n = 0;
          for (const auto& node : nodes_) n += node->stats().sends;
          return n;
        },
        [this] {
          std::uint64_t n = 0;
          for (const auto& node : nodes_) n += node->stats().exceptions;
          return n;
        });
  }
  if (!rma_engines_.empty()) {
    obs::SloSpec d;
    d.name = "rma/delivery";
    d.kind = obs::SloKind::delivery;
    d.target = 0.99;
    ts.slo().add_delivery(
        d,
        [this] {
          std::uint64_t n = 0;
          for (const auto& e : rma_engines_) n += e->stats().completions;
          return n;
        },
        [this] {
          std::uint64_t n = 0;
          for (const auto& e : rma_engines_) n += e->stats().error_completions;
          return n;
        });
  }

  // SLO hard breaches are failures: they trigger the flight recorder like
  // any exception upcall would.
  ts.slo().set_hard_breach_hook(
      [this](const obs::SloSpec& spec, double burn, TimePoint t) {
        recorder_->trigger(-1, obs::FlightRecorder::EntryKind::slo_breach, t,
                           "slo " + spec.name, -1,
                           static_cast<std::int64_t>(burn * 1000.0));
      });

  ts.arm(engine_.now() + config_.telemetry_cfg.period,
         [this] { return mains_remaining_ > 0; });
}

Duration Cluster::run(std::function<void(int)> main_fn) {
  const TimePoint t0 = engine_.now();
  TimePoint last_finish = t0;
  mains_remaining_ = config_.n_procs;

  if (!config_.faults.empty()) injector_->schedule(config_.faults);
  if (telemetry_ != nullptr) bind_telemetry();

  for (int r = 0; r < config_.n_procs; ++r) {
    host(r).spawn(
        [this, r, main_fn, &last_finish] {
          // An NcsException reaching main is a failed-but-clean process
          // exit (the exception service's whole point: no hung runs).
          try {
            main_fn(r);
          } catch (const mps::NcsException& e) {
            NCS_WARN("cluster", "p%d main aborted by %s", r, e.what());
          }
          last_finish = ncs::max(last_finish, engine_.now());
          --mains_remaining_;
        },
        {.name = "main", .priority = mts::kDefaultPriority});
  }
  engine_.run();
  NCS_ASSERT_MSG(mains_remaining_ == 0,
                 "a main thread never finished (deadlocked waiting on a message?)");
  if (timeline_enabled_) timeline_.finish(engine_.now());
  if (!config_.trace_path.empty()) write_trace(config_.trace_path);
  if (!config_.report_path.empty()) {
    std::ofstream f(config_.report_path);
    if (f.is_open()) {
      f << report_json(*this, last_finish - t0) << '\n';
    } else {
      NCS_WARN("cluster", "cannot write report to %s", config_.report_path.c_str());
    }
  }
  return last_finish - t0;
}

}  // namespace ncs::cluster
