#include "cluster/cluster.hpp"

#include <utility>

#include "common/assert.hpp"
#include "core/mps/atm_transport.hpp"
#include "core/mps/p4_transport.hpp"

namespace ncs::cluster {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  NCS_ASSERT(config_.n_procs >= 1);

  for (int r = 0; r < config_.n_procs; ++r) {
    mts::SchedulerParams sp;
    sp.name = "p" + std::to_string(r);
    sp.cpu_mhz = config_.cpu_mhz;
    sp.context_switch_cost = config_.context_switch_cost;
    sp.thread_create_cost = config_.thread_create_cost;
    hosts_.push_back(std::make_unique<mts::Scheduler>(engine_, sp));
  }

  switch (config_.network) {
    case NetworkKind::ethernet:
      bus_ = std::make_unique<ether::Bus>(engine_, config_.bus, config_.n_procs);
      break;
    case NetworkKind::atm_lan: {
      atm::LanConfig lc;
      lc.n_hosts = config_.n_procs;
      lc.nic = config_.nic;
      lc.host_link = config_.host_link;
      lc.sw = config_.sw;
      fabric_ = std::make_unique<atm::AtmLan>(engine_, lc);
      break;
    }
    case NetworkKind::atm_wan: {
      atm::WanConfig wc;
      wc.n_hosts = config_.n_procs;
      wc.nic = config_.nic;
      wc.host_link = config_.host_link;
      wc.backbone = config_.wan_backbone;
      wc.sw = config_.sw;
      if (config_.n_procs < 2) {
        // A one-host "WAN" degenerates to a LAN star.
        atm::LanConfig lc;
        lc.n_hosts = config_.n_procs;
        lc.nic = config_.nic;
        lc.host_link = config_.host_link;
        lc.sw = config_.sw;
        fabric_ = std::make_unique<atm::AtmLan>(engine_, lc);
      } else {
        fabric_ = std::make_unique<atm::AtmWan>(engine_, wc);
      }
      break;
    }
  }
}

Cluster::~Cluster() {
  for (auto& n : nodes_) api::unregister_node(n.get());
}

void Cluster::enable_timeline() {
  timeline_enabled_ = true;
  for (auto& h : hosts_) h->set_timeline(&timeline_);
}

p4::Runtime& Cluster::init_p4() {
  NCS_ASSERT_MSG(p4_ == nullptr, "runtime already initialized");
  if (config_.network == NetworkKind::ethernet) {
    segnet_ = std::make_unique<proto::EthernetSegmentNetwork>(*bus_, config_.n_procs);
  } else {
    segnet_ = std::make_unique<proto::AtmSegmentNetwork>(engine_, *fabric_);
  }
  std::vector<mts::Scheduler*> scheds;
  for (auto& h : hosts_) scheds.push_back(h.get());
  p4_ = std::make_unique<p4::Runtime>(engine_, scheds, *segnet_, config_.tcp, config_.costs);
  return *p4_;
}

void Cluster::init_ncs_nsm() {
  init_p4();
  for (int r = 0; r < config_.n_procs; ++r) {
    auto transport = std::make_unique<mps::P4Transport>(p4_->process(r));
    nodes_.push_back(std::make_unique<mps::Node>(host(r), r, config_.n_procs,
                                                 std::move(transport), config_.ncs));
    api::register_node(nodes_.back().get());
  }
}

void Cluster::init_ncs_hsm() {
  NCS_ASSERT_MSG(config_.network != NetworkKind::ethernet,
                 "HSM requires an ATM fabric");
  NCS_ASSERT_MSG(p4_ == nullptr, "runtime already initialized");
  if (config_.hsm_use_svc) {
    auto* lan = dynamic_cast<atm::AtmLan*>(fabric_.get());
    NCS_ASSERT_MSG(lan != nullptr, "SVC provisioning needs the single-switch ATM LAN");
    call_controller_ = std::make_unique<atm::CallController>(engine_, *lan);
  }
  for (int r = 0; r < config_.n_procs; ++r) {
    mps::AtmTransport::Params tp;
    tp.chunk_size = config_.hsm_chunk;
    tp.costs = config_.costs;
    if (call_controller_ != nullptr) tp.signaling = &call_controller_->agent(r);
    auto transport = std::make_unique<mps::AtmTransport>(host(r), fabric_->nic(r), tp);
    nodes_.push_back(std::make_unique<mps::Node>(host(r), r, config_.n_procs,
                                                 std::move(transport), config_.ncs));
    api::register_node(nodes_.back().get());
  }
}

Duration Cluster::run(std::function<void(int)> main_fn) {
  const TimePoint t0 = engine_.now();
  TimePoint last_finish = t0;
  int remaining = config_.n_procs;

  for (int r = 0; r < config_.n_procs; ++r) {
    host(r).spawn(
        [this, r, main_fn, &last_finish, &remaining] {
          main_fn(r);
          last_finish = ncs::max(last_finish, engine_.now());
          --remaining;
        },
        {.name = "main", .priority = mts::kDefaultPriority});
  }
  engine_.run();
  NCS_ASSERT_MSG(remaining == 0,
                 "a main thread never finished (deadlocked waiting on a message?)");
  if (timeline_enabled_) timeline_.finish(engine_.now());
  return last_finish - t0;
}

}  // namespace ncs::cluster
