#include "cluster/table.hpp"

#include <cstdio>

#include "cluster/bench_json.hpp"

namespace ncs::cluster {

double improvement_pct(Duration p4_time, Duration ncs_time) {
  if (p4_time.is_zero()) return 0.0;
  return (p4_time - ncs_time).sec() / p4_time.sec() * 100.0;
}

std::string format_table(const std::string& title, const std::string& left_testbed,
                         const std::string& right_testbed,
                         const std::vector<TableRow>& rows) {
  std::string out;
  char line[256];

  out += title + "\n";
  std::snprintf(line, sizeof line, "%-6s | %28s | %28s\n", "", left_testbed.c_str(),
                right_testbed.c_str());
  out += line;
  std::snprintf(line, sizeof line, "%-6s | %8s %11s %7s | %8s %11s %7s\n", "Nodes", "p4",
                "NCS_MTS/p4", "%impr", "p4", "NCS_MTS/p4", "%impr");
  out += line;
  out += std::string(93, '-') + "\n";

  for (const TableRow& r : rows) {
    std::string left = "       (not measured)       ";
    std::string right = left;
    char buf[96];
    if (r.has_ethernet) {
      std::snprintf(buf, sizeof buf, "%8.2f %11.2f %6.2f%%", r.p4_ethernet.sec(),
                    r.ncs_ethernet.sec(), improvement_pct(r.p4_ethernet, r.ncs_ethernet));
      left = buf;
    }
    if (r.has_atm) {
      std::snprintf(buf, sizeof buf, "%8.2f %11.2f %6.2f%%", r.p4_atm.sec(),
                    r.ncs_atm.sec(), improvement_pct(r.p4_atm, r.ncs_atm));
      right = buf;
    }
    std::snprintf(line, sizeof line, "%-6d | %s | %s\n", r.nodes, left.c_str(), right.c_str());
    out += line;
  }
  return out;
}

std::string table_json(const std::string& bench, const std::vector<TableRow>& rows,
                       bool all_correct) {
  BenchReport report(bench);
  for (const TableRow& r : rows) {
    report.row();
    report.set("nodes", r.nodes);
    if (r.has_ethernet) {
      report.set("p4_ethernet_sec", r.p4_ethernet.sec());
      report.set("ncs_ethernet_sec", r.ncs_ethernet.sec());
      report.set("ethernet_improvement_pct", improvement_pct(r.p4_ethernet, r.ncs_ethernet));
    }
    if (r.has_atm) {
      report.set("p4_atm_sec", r.p4_atm.sec());
      report.set("ncs_atm_sec", r.ncs_atm.sec());
      report.set("atm_improvement_pct", improvement_pct(r.p4_atm, r.ncs_atm));
    }
  }
  report.summary("all_correct", all_correct);
  return report.to_json();
}

}  // namespace ncs::cluster
