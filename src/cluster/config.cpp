#include "cluster/config.hpp"

namespace ncs::cluster {

const char* to_string(NetworkKind k) {
  switch (k) {
    case NetworkKind::ethernet: return "Ethernet";
    case NetworkKind::atm_lan: return "ATM LAN";
    case NetworkKind::atm_wan: return "NYNET WAN";
    case NetworkKind::atm_wan_multi: return "NYNET multi-site WAN";
  }
  return "?";
}

ClusterConfig sun_ethernet(int n_procs) {
  ClusterConfig c;
  c.name = "SUN/Ethernet";
  c.n_procs = n_procs;
  c.network = NetworkKind::ethernet;
  c.cpu_mhz = 33.0;  // SPARCstation ELC
  return c;
}

ClusterConfig sun_atm_lan(int n_procs) {
  ClusterConfig c;
  c.name = "SUN/ATM LAN";
  c.n_procs = n_procs;
  c.network = NetworkKind::atm_lan;
  c.cpu_mhz = 40.0;  // SPARCstation IPX
  return c;
}

ClusterConfig nynet_wan(int n_procs) {
  ClusterConfig c;
  c.name = "NYNET WAN";
  c.n_procs = n_procs;
  c.network = NetworkKind::atm_wan;
  c.cpu_mhz = 40.0;
  return c;
}

ClusterConfig nynet_wan_multi(int n_procs, int n_sites) {
  ClusterConfig c;
  c.name = "NYNET multi-site WAN";
  c.n_procs = n_procs;
  c.network = NetworkKind::atm_wan_multi;
  c.wan_sites = n_sites;
  c.cpu_mhz = 40.0;
  return c;
}

const Calibration& calibration() {
  static const Calibration cal;
  return cal;
}

}  // namespace ncs::cluster
