#include "apps/fft.hpp"
#include "cluster/compute.hpp"
#include "cluster/drivers.hpp"
#include "common/assert.hpp"

namespace ncs::cluster {

namespace {

using apps::fft::assemble;
using apps::fft::Complex;
using apps::fft::fft;
using apps::fft::flops_per_butterfly;
using apps::fft::global_stage;
using apps::fft::keeps_sum_half;
using apps::fft::local_phase;
using apps::fft::log2_exact;
using apps::fft::make_samples;
using apps::fft::pack;
using apps::fft::unpack;

constexpr int kTypeA = 30;
constexpr int kTypeB = 31;
constexpr int kTypeExchange = 32;
constexpr int kTypeResult = 33;

double stage_cycles(std::size_t butterflies) {
  return static_cast<double>(butterflies) * calibration().fft_cycles_per_butterfly;
}

/// The compute/communicate body shared by both variants: runs the paper's
/// Fig 21 algorithm for one global thread. `exchange` sends `out` to the
/// partner thread and returns its counterpart; `charge` prices butterflies.
template <typename ExchangeFn, typename ChargeFn>
std::vector<Complex> fft_thread_body(std::vector<Complex> a, std::vector<Complex> b,
                                     int thread_num, std::size_t m, std::size_t n_threads,
                                     ExchangeFn&& exchange, ChargeFn&& charge) {
  const std::size_t r = m / (2 * n_threads);
  std::vector<Complex> x(r), y(r);
  const int global_steps = log2_exact(n_threads);

  for (int step = 0; step < global_steps; ++step) {
    charge(r);
    global_stage(a, b, x, y, thread_num, step, m, n_threads);
    const int d = static_cast<int>(n_threads) >> (step + 1);
    if (keeps_sum_half(thread_num, d)) {
      // Upper half: keep the sums, ship the twiddled differences down.
      b = exchange(thread_num + d, pack(y));
      a = x;
    } else {
      a = exchange(thread_num - d, pack(x));
      b = y;
    }
  }

  // Local sub-FFT of the 2R points this thread now owns.
  std::vector<Complex> local(2 * r);
  std::copy(a.begin(), a.end(), local.begin());
  std::copy(b.begin(), b.end(), local.begin() + static_cast<std::ptrdiff_t>(r));
  charge(r * static_cast<std::size_t>(log2_exact(2 * r)));
  local_phase(local, m);
  return local;
}

bool verify_sets(const std::vector<std::vector<Complex>>& results, std::size_t m, int sets) {
  for (int s = 0; s < sets; ++s) {
    const auto reference = fft(make_samples(m, static_cast<std::uint64_t>(s)));
    if (!apps::fft::approx_equal(results[static_cast<std::size_t>(s)], reference,
                                 1e-6 * static_cast<double>(m)))
      return false;
  }
  return true;
}

}  // namespace

namespace {

/// One-node rows (paper Tables 3): a single workstation, no host/node
/// traffic. `threads` > 1 splits the butterfly work across NCS threads
/// with a local barrier per set — pure thread-maintenance overhead, which
/// is why the paper's 1-node NCS times trail p4's slightly.
AppResult run_fft_single(ClusterConfig base, int threads) {
  const Calibration& cal = calibration();
  const std::size_t m = cal.fft_m;
  base.n_procs = 1;
  Cluster cluster(std::move(base));

  std::vector<std::vector<Complex>> results(static_cast<std::size_t>(cal.fft_sample_sets));
  const double butterflies_per_set = static_cast<double>(m / 2 * static_cast<std::size_t>(log2_exact(m)));

  const Duration elapsed = cluster.run([&](int) {
    mts::Scheduler& host = cluster.host(0);
    if (threads == 1) {
      for (int set = 0; set < cal.fft_sample_sets; ++set) {
        charge_compute(host, butterflies_per_set * cal.fft_cycles_per_butterfly);
        results[static_cast<std::size_t>(set)] = fft(make_samples(m, static_cast<std::uint64_t>(set)));
      }
      return;
    }
    auto barrier = std::make_shared<mts::Barrier>(host, threads);
    std::vector<mts::Thread*> workers;
    for (int t = 0; t < threads; ++t) {
      workers.push_back(host.spawn([&, t, barrier] {
        for (int set = 0; set < cal.fft_sample_sets; ++set) {
          charge_compute(host, butterflies_per_set * cal.fft_cycles_per_butterfly / threads);
          barrier->arrive_and_wait();
          if (t == 0)
            results[static_cast<std::size_t>(set)] =
                fft(make_samples(m, static_cast<std::uint64_t>(set)));
        }
      }, {.name = "fft" + std::to_string(t)}));
    }
    for (mts::Thread* w : workers) host.join(w);
  });

  AppResult result{elapsed, false};
  result.correct = verify_sets(results, m, cal.fft_sample_sets);
  for (const auto& set : results)
    result.result_hash = fnv1a(set.data(), set.size() * sizeof(Complex), result.result_hash);
  fill_runtime_stats(cluster, result);
  return result;
}

}  // namespace

AppResult run_fft_p4(ClusterConfig base, int nodes) {
  const Calibration& cal = calibration();
  const std::size_t m = cal.fft_m;
  const auto n_threads = static_cast<std::size_t>(nodes);  // one per node process
  NCS_ASSERT(nodes >= 1 && m % (2 * n_threads) == 0);
  if (nodes == 1) return run_fft_single(std::move(base), 1);
  base.n_procs = nodes + 1;
  Cluster cluster(std::move(base));
  p4::Runtime& rt = cluster.init_p4();

  const std::size_t r = m / (2 * n_threads);
  std::vector<std::vector<Complex>> results(static_cast<std::size_t>(cal.fft_sample_sets));

  const Duration elapsed = cluster.run([&](int rank) {
    p4::Process& p = rt.process(rank);
    if (rank == 0) {
      for (int set = 0; set < cal.fft_sample_sets; ++set) {
        const auto samples = make_samples(m, static_cast<std::uint64_t>(set));
        for (int i = 1; i <= nodes; ++i) {
          const std::size_t base_row = static_cast<std::size_t>(i - 1) * r;
          p.send(kTypeA, i, pack({samples.data() + base_row, r}));
          p.send(kTypeB, i, pack({samples.data() + base_row + m / 2, r}));
        }
        std::vector<Complex> concatenated(m);
        for (int i = 1; i <= nodes; ++i) {
          int type = kTypeResult;
          int from = i;
          const auto block = unpack(p.recv(&type, &from));
          std::copy(block.begin(), block.end(),
                    concatenated.begin() +
                        static_cast<std::ptrdiff_t>(static_cast<std::size_t>(i - 1) * 2 * r));
        }
        results[static_cast<std::size_t>(set)] = assemble(concatenated);
      }
    } else {
      const int thread_num = rank - 1;
      for (int set = 0; set < cal.fft_sample_sets; ++set) {
        int type = kTypeA, from = 0;
        auto a = unpack(p.recv(&type, &from));
        type = kTypeB;
        from = 0;
        auto b = unpack(p.recv(&type, &from));

        auto local = fft_thread_body(
            std::move(a), std::move(b), thread_num, m, n_threads,
            [&](int partner, Bytes out) {
              p.send(kTypeExchange, partner + 1, out);
              int t = kTypeExchange;
              int f = partner + 1;
              return unpack(p.recv(&t, &f));
            },
            [&](std::size_t butterflies) {
              charge_compute(p.host(), stage_cycles(butterflies));
            });
        p.send(kTypeResult, 0, pack(local));
      }
    }
  });

  AppResult result{elapsed, false};
  result.correct = verify_sets(results, m, cal.fft_sample_sets);
  for (const auto& set : results)
    result.result_hash = fnv1a(set.data(), set.size() * sizeof(Complex), result.result_hash);
  fill_runtime_stats(cluster, result);
  return result;
}

AppResult run_fft_ncs(ClusterConfig base, int nodes, NcsTier tier) {
  const Calibration& cal = calibration();
  const std::size_t m = cal.fft_m;
  constexpr int kTpn = 2;  // two threads per node process (paper Fig 20)
  const auto n_threads = static_cast<std::size_t>(nodes * kTpn);
  NCS_ASSERT(nodes >= 1 && m % (2 * n_threads) == 0);
  if (nodes == 1) return run_fft_single(std::move(base), kTpn);
  base.n_procs = nodes + 1;
  Cluster cluster(std::move(base));
  if (tier == NcsTier::nsm_p4) {
    cluster.init_ncs_nsm();
  } else {
    cluster.init_ncs_hsm();
  }

  const std::size_t r = m / (2 * n_threads);
  std::vector<std::vector<Complex>> results(static_cast<std::size_t>(cal.fft_sample_sets));

  // Global thread g lives on process g/kTpn + 1 as local thread g%kTpn.
  const auto proc_of = [](int g) { return g / kTpn + 1; };
  const auto local_of = [](int g) { return g % kTpn; };

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);

    if (rank == 0) {
      // Host process has a single thread (paper Section 5.3.2): the main
      // thread itself distributes and collects.
      for (int set = 0; set < cal.fft_sample_sets; ++set) {
        const auto samples = make_samples(m, static_cast<std::uint64_t>(set));
        for (std::size_t g = 0; g < n_threads; ++g) {
          const std::size_t base_row = g * r;
          const int gi = static_cast<int>(g);
          node.send(0, local_of(gi), proc_of(gi), pack({samples.data() + base_row, r}));
          node.send(0, local_of(gi), proc_of(gi), pack({samples.data() + base_row + m / 2, r}));
        }
        std::vector<Complex> concatenated(m);
        for (std::size_t g = 0; g < n_threads; ++g) {
          const int gi = static_cast<int>(g);
          const auto block = unpack(node.recv(local_of(gi), proc_of(gi), 0));
          std::copy(block.begin(), block.end(),
                    concatenated.begin() + static_cast<std::ptrdiff_t>(g * 2 * r));
        }
        results[static_cast<std::size_t>(set)] = assemble(concatenated);
      }
    } else {
      std::vector<int> tids(kTpn);
      for (int t = 0; t < kTpn; ++t) {
        tids[static_cast<std::size_t>(t)] = node.t_create([&, t, rank] {
          const int thread_num = (rank - 1) * kTpn + t;  // paper: 2*my_num + tid
          for (int set = 0; set < cal.fft_sample_sets; ++set) {
            auto a = unpack(node.recv(0, 0, t));
            auto b = unpack(node.recv(0, 0, t));

            auto local = fft_thread_body(
                std::move(a), std::move(b), thread_num, m, n_threads,
                [&](int partner, Bytes out) {
                  node.send(t, local_of(partner), proc_of(partner), out);
                  return unpack(node.recv(local_of(partner), proc_of(partner), t));
                },
                [&](std::size_t butterflies) {
                  charge_compute(node.host(), stage_cycles(butterflies));
                });
            node.send(t, 0, 0, pack(local));
          }
        }, mts::kDefaultPriority, "fft" + std::to_string(t));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    }
  });

  AppResult result{elapsed, false};
  result.correct = verify_sets(results, m, cal.fft_sample_sets);
  for (const auto& set : results)
    result.result_hash = fnv1a(set.data(), set.size() * sizeof(Complex), result.result_hash);
  fill_runtime_stats(cluster, result);
  return result;
}

AppResult run_fft_coll(ClusterConfig base, int nodes, NcsTier tier) {
  const Calibration& cal = calibration();
  const std::size_t m = cal.fft_m;
  const auto n_threads = static_cast<std::size_t>(nodes);  // one global thread per process
  NCS_ASSERT(nodes >= 2 && (nodes & (nodes - 1)) == 0 && m % (2 * n_threads) == 0);
  base.n_procs = nodes;
  Cluster cluster(std::move(base));
  if (tier == NcsTier::nsm_p4) {
    cluster.init_ncs_nsm();
  } else {
    cluster.init_ncs_hsm();
  }

  const std::size_t r = m / (2 * n_threads);
  std::vector<std::vector<Complex>> results(static_cast<std::size_t>(cal.fft_sample_sets));

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);

    for (int set = 0; set < cal.fft_sample_sets; ++set) {
      // Rank 0 owns the samples; the two input halves reach their threads
      // as scatters. The butterfly exchanges stay point-to-point (they are
      // pairwise, not group traffic), and the spectrum converges by gather.
      std::vector<Bytes> a_slices, b_slices;
      if (rank == 0) {
        const auto samples = make_samples(m, static_cast<std::uint64_t>(set));
        for (std::size_t g = 0; g < n_threads; ++g) {
          a_slices.push_back(pack({samples.data() + g * r, r}));
          b_slices.push_back(pack({samples.data() + g * r + m / 2, r}));
        }
      }
      auto a = unpack(node.scatter(0, a_slices));
      auto b = unpack(node.scatter(0, b_slices));

      auto local = fft_thread_body(
          std::move(a), std::move(b), rank, m, n_threads,
          [&](int partner, Bytes out) {
            node.send(0, 0, partner, out);
            return unpack(node.recv(0, partner, 0));
          },
          [&](std::size_t butterflies) {
            charge_compute(node.host(), stage_cycles(butterflies));
          });

      const auto gathered = node.gather(0, pack(local));
      if (rank == 0) {
        std::vector<Complex> concatenated(m);
        for (std::size_t g = 0; g < n_threads; ++g) {
          const auto block = unpack(gathered[g]);
          std::copy(block.begin(), block.end(),
                    concatenated.begin() + static_cast<std::ptrdiff_t>(g * 2 * r));
        }
        results[static_cast<std::size_t>(set)] = assemble(concatenated);
      }
    }
  });

  AppResult result{elapsed, false};
  result.correct = verify_sets(results, m, cal.fft_sample_sets);
  for (const auto& set : results)
    result.result_hash = fnv1a(set.data(), set.size() * sizeof(Complex), result.result_hash);
  fill_runtime_stats(cluster, result);
  return result;
}

}  // namespace ncs::cluster
