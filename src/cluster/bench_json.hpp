// Machine-readable bench output.
//
// Every bench binary accepts `--json[=path]` and then emits its results
// under the stable schema "ncs-bench-v1":
//
//   {"schema": "ncs-bench-v1",
//    "bench": "<binary name>",
//    "rows": [{"<field>": <value>, ...}, ...],
//    "summary": {"<field>": <value>, ...}}
//
// Rows carry the bench's table (one object per configuration measured);
// summary carries run-wide facts (e.g. "all_correct"). Fields are flat
// name -> number/string/bool; a field name, once published, keeps its
// meaning and units (suffix: _sec, _ms, _bytes, ...).
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace ncs::cluster {

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Starts a new row; subsequent set() calls fill it.
  void row() { rows_.emplace_back(); }

  void set(const std::string& field, double v);
  void set(const std::string& field, std::int64_t v);
  void set(const std::string& field, int v) { set(field, static_cast<std::int64_t>(v)); }
  void set(const std::string& field, std::uint64_t v);
  void set(const std::string& field, const std::string& v);
  void set(const std::string& field, bool v);

  /// Run-wide fields, emitted under "summary".
  void summary(const std::string& field, double v);
  void summary(const std::string& field, std::int64_t v);
  void summary(const std::string& field, const std::string& v);
  void summary(const std::string& field, bool v);

  std::string to_json() const;

  /// Writes to_json() to `path` ("" or "-" means stdout).
  void emit(const std::string& path) const;

 private:
  struct Field {
    enum class Kind { number, integer, unsigned_integer, string, boolean };
    std::string name;
    Kind kind;
    double num = 0;
    std::int64_t i64 = 0;
    std::uint64_t u64 = 0;
    std::string str;
    bool b = false;
  };

  static void write_field(obs::JsonWriter& w, const Field& f);
  Field& add(const std::string& field);
  Field& add_summary(const std::string& field);

  std::string bench_;
  std::vector<std::vector<Field>> rows_;
  std::vector<Field> summary_;
};

/// Scans argv for `--json` / `--json=PATH`. Returns true when present and
/// stores the destination in `path` ("" = stdout).
bool parse_json_flag(int argc, char** argv, std::string* path);

/// Writes `doc` plus a trailing newline to `path` ("" or "-" = stdout).
void emit_json(const std::string& doc, const std::string& path);

}  // namespace ncs::cluster
