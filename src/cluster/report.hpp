// Post-run statistics report: everything the runtimes and substrates
// counted during a simulation, rendered as one text block. Benches and
// examples print it so a run's behaviour (message counts, stalls,
// retransmissions, scheduler overheads, wire-level traffic) is inspectable
// without a debugger.
#pragma once

#include <string>

#include "cluster/cluster.hpp"

namespace ncs::cluster {

/// Renders per-host scheduler/runtime statistics plus network-level
/// counters for whatever runtime(s) and substrate the cluster used.
std::string report(Cluster& cluster);

}  // namespace ncs::cluster
