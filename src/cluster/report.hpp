// Post-run statistics report: everything the runtimes and substrates
// counted during a simulation, rendered as one text block. Benches and
// examples print it so a run's behaviour (message counts, stalls,
// retransmissions, scheduler overheads, wire-level traffic) is inspectable
// without a debugger.
#pragma once

#include <string>

#include "cluster/cluster.hpp"

namespace ncs::cluster {

/// Renders per-host scheduler/runtime statistics plus network-level
/// counters for whatever runtime(s) and substrate the cluster used.
std::string report(Cluster& cluster);

/// Machine-readable run report (schema "ncs-run-report-v1"): run metadata
/// (config name, processes, final clock, engine event count) plus the full
/// metrics registry keyed "host/module/name". Pass the Duration returned
/// by run() as `makespan`; omit it for runs that never complete a phase.
std::string report_json(Cluster& cluster);
std::string report_json(Cluster& cluster, Duration makespan);

}  // namespace ncs::cluster
