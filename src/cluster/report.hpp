// Post-run statistics report: everything the runtimes and substrates
// counted during a simulation, rendered as one text block. Benches and
// examples print it so a run's behaviour (message counts, stalls,
// retransmissions, scheduler overheads, wire-level traffic) is inspectable
// without a debugger.
#pragma once

#include <string>

#include "cluster/cluster.hpp"

namespace ncs::cluster {

/// Renders per-host scheduler/runtime statistics plus network-level
/// counters for whatever runtime(s) and substrate the cluster used.
std::string report(Cluster& cluster);

/// Machine-readable run report: run metadata (config name, processes,
/// final clock, engine event count) plus the full metrics registry keyed
/// "host/module/name". Schema "ncs-run-report-v1" normally; when the
/// cluster has a profiler attached (ClusterConfig::profile /
/// enable_profiling()) the schema is "ncs-run-report-v3" and a "profile"
/// section is added: per-layer latency histograms (p50/p90/p99/p99.9),
/// message completion counts, per-thread activity totals, and per-host
/// compute/communicate/overlap ratios (the paper's Fig 4 quantity). With
/// the telemetry plane on (ClusterConfig::telemetry) a "telemetry"
/// section (windowed timeseries + SLO grades) and a "flight_recorder"
/// summary are added too. Pass
/// the Duration returned by run() as `makespan`; omit it for runs that
/// never complete a phase.
std::string report_json(Cluster& cluster);
std::string report_json(Cluster& cluster, Duration makespan);

/// Human-readable bottleneck attribution for a profiled run: per-layer
/// latency table (count, p50, p99, max, share of end-to-end), the one-line
/// p99 attribution summary, and per-host overlap ratios. Returns a note
/// string when the cluster was not profiled.
std::string bottleneck_report(Cluster& cluster);

}  // namespace ncs::cluster
