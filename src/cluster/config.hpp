// Testbed presets and calibration constants.
//
// Three configurations mirror Section 2 of the paper:
//   sun_ethernet : SPARCstation ELCs (~33 MHz) on one shared 10 Mbps
//                  Ethernet segment.
//   sun_atm_lan  : SPARCstation IPXs (~40 MHz), FORE switch, dedicated
//                  140 Mbps TAXI host links, SBA-200 adapters.
//   nynet_wan    : same hosts split across two sites whose switches are
//                  joined by a DS-3 SONET hop with WAN propagation.
//
// Calibration: per-application cycle costs are set so *one-node* times land
// near the paper's Tables 1-3 on the Ethernet testbed; everything else
// (scaling, p4-vs-NCS gaps, Ethernet-vs-ATM gaps) must then emerge from
// the model. See EXPERIMENTS.md for the recorded correspondence.
#pragma once

#include "atm/network.hpp"
#include "atm/nic_coll.hpp"
#include "core/mps/node.hpp"
#include "core/mts/scheduler.hpp"
#include "ether/bus.hpp"
#include "fault/plan.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "proto/costs.hpp"
#include "proto/tcp.hpp"
#include "rma/engine.hpp"
#include "sim/engine.hpp"

namespace ncs::cluster {

enum class NetworkKind { ethernet, atm_lan, atm_wan, atm_wan_multi };

const char* to_string(NetworkKind k);

struct ClusterConfig {
  std::string name = "cluster";
  int n_procs = 4;  // workstations; one process per workstation
  NetworkKind network = NetworkKind::ethernet;

  /// Event-queue backend for the simulation engine. Both backends honour
  /// the same (time, insertion-seq) contract; legacy_map keeps the seed
  /// std::map ordering around for determinism diffing
  /// (tests/fault/test_determinism_digest.cpp).
  sim::Engine::QueueKind queue = sim::Engine::kDefaultQueue;

  // Host CPU (SPARCstation ELC ~33 MHz / IPX ~40 MHz).
  double cpu_mhz = 33.0;
  Duration context_switch_cost = Duration::microseconds(8);
  Duration thread_create_cost = Duration::microseconds(25);

  /// Cores per workstation (core/mts/smp.hpp). 1 = the paper's uniprocessor
  /// testbed, bit-identical to the original scheduler; >1 enables the
  /// work-stealing multi-core runtime with the knobs below.
  int cores = 1;
  mts::StealPolicy steal = mts::StealPolicy::seeded;
  mts::ProgressModel progress = mts::ProgressModel::dedicated_core;
  /// hybrid progress: maximum user charge slice between yield points.
  Duration poll_quantum = Duration::microseconds(200);
  /// Base of the per-rank victim-permutation seeds (StealPolicy::seeded).
  std::uint64_t steal_seed = 1995;

  proto::CostModel costs;
  /// p4 sets TCP_NODELAY on its sockets (as every message-passing library
  /// of the era learned to), so the presets disable Nagle; the
  /// ablation_nodelay bench shows the collapse without it.
  proto::TcpParams tcp{.nagle = false};

  // ATM fabrics.
  atm::NicParams nic{.io_buffer_size = 9216, .tx_buffers = 2};
  net::LinkParams host_link{.bandwidth_bps = bw::taxi_140,
                            .propagation = Duration::microseconds(2)};
  net::LinkParams wan_backbone{.bandwidth_bps = bw::ds3,
                               .propagation = Duration::milliseconds(2.5)};
  atm::SwitchParams sw;

  // Multi-stage WAN (NetworkKind::atm_wan_multi): chain length and the
  // provisioned traffic matrix (empty = full PVC mesh; large clusters must
  // name their pairs — see atm::MultiWanConfig::provision).
  int wan_sites = 4;
  std::vector<std::pair<int, int>> wan_provision;

  // Ethernet segment.
  ether::BusParams bus;

  // NCS runtime options (flow/error control, collectives, and the
  // point-to-point protocol engine via `ncs.proto` — off by default).
  mps::Node::Options ncs;
  std::size_t hsm_chunk = 4096;
  /// One-sided plane (src/rma): when enabled, init_ncs_hsm() attaches an
  /// rma::Engine per rank (the topologies always provision the RMA-plane
  /// PVC mesh alongside the data mesh, so enabling this costs no labels
  /// beyond what the constructor already installed).
  bool rma_enabled = false;
  rma::Params rma;
  /// Firmware timing model for the NIC-offloaded collectives. The feature
  /// itself is switched by `ncs.coll.nic_offload` (selection thresholds
  /// live beside it in coll::Params); when set, init_ncs_hsm() attaches a
  /// mps::NicCollPort per rank. The tree radix is taken from
  /// `ncs.coll.offload_radix` — the value here is ignored.
  atm::NicCollParams nic_coll;
  /// HSM tier circuit provisioning: static full-mesh PVCs (default, the
  /// testbed configuration) or on-demand SVCs via the signaling channel
  /// (ATM LAN only; first contact with a peer pays the call setup).
  bool hsm_use_svc = false;

  /// Scripted fault scenario armed on the cluster's FaultInjector at run()
  /// (empty = fault-free). Targets: "ether", link names ("taxi0", "sonet"),
  /// switch names ("lan-switch", "wan-switch0"), NIC names ("nic0"), hosts
  /// ("p0"). See fault/plan.hpp for the event vocabulary and text syntax.
  fault::FaultPlan faults;

  /// When nonempty, the cluster enables Chrome tracing at construction and
  /// writes the event log (fault instants included) here after run().
  std::string trace_path;

  /// Enables the message-lifecycle / overlap profiler at construction
  /// (implies the activity timeline). run() then folds per-layer latency
  /// histograms and per-host overlap ratios; report_json() switches to the
  /// "ncs-run-report-v3" schema with a "profile" section.
  bool profile = false;

  /// When nonempty, the cluster writes report_json() here after run()
  /// (pairs with `profile` for the --prof bench flag, but works without).
  std::string report_path;

  /// Enables the live telemetry plane at construction (implies `profile`):
  /// a periodic sampler snapshots windowed latency sketches (mps/e2e,
  /// rma/op), queue-depth/credit gauges and SLO grades every
  /// telemetry_cfg.period of simulated time. report_json() gains a
  /// "telemetry" section ("ncs-run-report-v3"); with tracing on, every
  /// sampled value is also a Perfetto counter track.
  bool telemetry = false;
  obs::TelemetryConfig telemetry_cfg;

  /// Latency SLOs bound at init_* time (spec.sketch names the telemetry
  /// sketch: "mps/e2e", "rma/op"). A delivery SLO over NCS exceptions is
  /// always added when telemetry is on. Hard breaches trigger the flight
  /// recorder.
  std::vector<obs::SloSpec> slos;

  /// When nonempty, arms the flight recorder: the first failure trigger
  /// (NcsException upcall, EC give-up, SLO hard breach) dumps the merged
  /// per-host rings here as ncs-flight-recorder-v1 JSON.
  std::string recorder_path;
};

/// The paper's "SUN/Ethernet" testbed with `n_procs` workstations.
ClusterConfig sun_ethernet(int n_procs);

/// The paper's "SUN/ATM LAN" testbed.
ClusterConfig sun_atm_lan(int n_procs);

/// The NYNET WAN testbed (two sites, DS-3 hop).
ClusterConfig nynet_wan(int n_procs);

/// The NYNET WAN extrapolated to a chain of `n_sites` sites (scale
/// studies; set ClusterConfig::wan_provision for large n_procs).
ClusterConfig nynet_wan_multi(int n_procs, int n_sites);

/// Per-application calibration constants (see header comment).
struct Calibration {
  /// Matmul: effective CPU cycles per inner-loop multiply-add of the
  /// paper's unblocked triple loop (memory stalls included); n = 128.
  double matmul_cycles_per_op = 405.0;
  int matmul_n = 128;

  /// JPEG: effective cycles per pixel for each direction (1995 floating
  /// point baseline JPEG); image is the paper's 600 KB frame.
  double jpeg_compress_cycles_per_pixel = 260.0;
  double jpeg_decompress_cycles_per_pixel = 230.0;
  int jpeg_width = 1024;
  int jpeg_height = 600;

  /// FFT: effective cycles per butterfly, absorbing the paper
  /// implementation's large per-point constant (their 1-node M=512 run
  /// takes seconds); M = 512, 8 sample sets.
  double fft_cycles_per_butterfly = 10200.0;
  std::size_t fft_m = 512;
  int fft_sample_sets = 8;
};

const Calibration& calibration();

}  // namespace ncs::cluster
