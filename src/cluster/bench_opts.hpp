// Shared command-line options for the bench/ binaries.
//
// Every bench accepts the same three flags, parsed here once instead of
// per-binary:
//
//   --json[=PATH]      emit the ncs-bench-v1 report ("" or "-" = stdout)
//   --trace[=PATH]     write a Chrome trace (default "<tag>_trace.json")
//   --prof[=PREFIX]    enable the message-lifecycle / overlap profiler for
//                      the bench's profiled run: writes
//                      "<PREFIX>_report.json" (ncs-run-report-v3, per-layer
//                      histograms + overlap ratios) and
//                      "<PREFIX>_trace.json" (flow events included), and the
//                      bench prints the bottleneck table. PREFIX defaults to
//                      the bench tag.
//   --telemetry[=PREFIX] enable the live telemetry plane (implies --prof):
//                      the report gains the "telemetry" section (windowed
//                      p50/p99/p99.9 series, gauges, SLO grades), the trace
//                      gains one counter track per sampled value, and the
//                      flight recorder arms at "<PREFIX>_recorder.json".
#pragma once

#include <string>

#include "cluster/config.hpp"

namespace ncs::cluster {

struct BenchOptions {
  bool json = false;
  std::string json_path;  // "" = stdout
  bool trace = false;
  std::string trace_path;  // "" = default "<tag>_trace.json"
  bool prof = false;
  std::string prof_prefix;  // "" = default "<tag>"
  bool telemetry = false;
  std::string telemetry_prefix;  // "" = default prof prefix / tag

  /// Applies the trace/profiling/telemetry flags to one run's config; `tag`
  /// names the run in default output paths. --prof implies a trace (that's
  /// where the flow events live) unless --trace picked an explicit path;
  /// --telemetry implies --prof.
  void apply(ClusterConfig* config, const std::string& tag) const;

  /// The profiled run's report destination ("" when --prof is absent).
  std::string report_path(const std::string& tag) const;

  /// The armed flight-recorder dump path ("" when --telemetry is absent).
  std::string recorder_path(const std::string& tag) const;
};

/// Scans argv for the shared flags; unknown arguments are ignored (benches
/// with extra flags keep parsing those themselves).
BenchOptions parse_bench_options(int argc, char** argv);

class Cluster;

/// Run-level telemetry summary a bench can report rows from and gate on.
/// Extract before the cluster is torn down; zeros when telemetry was off.
struct BenchTelemetry {
  bool enabled = false;
  std::uint64_t ticks = 0;
  // Quantiles over the run-total sketches (simulated time, deterministic).
  double e2e_p99_us = 0.0;
  double e2e_p999_us = 0.0;
  double rma_p99_us = 0.0;
  double rma_p999_us = 0.0;
  /// Worst run-level compliance across every objective (1.0 = all held).
  double slo_compliance = 1.0;
  double slo_max_burn = 0.0;
  std::uint64_t slo_hard_breaches = 0;
  std::uint64_t recorder_triggers = 0;
  std::uint64_t recorder_dumps = 0;
};
BenchTelemetry fold_telemetry(Cluster& cluster);

}  // namespace ncs::cluster
