// Shared command-line options for the bench/ binaries.
//
// Every bench accepts the same three flags, parsed here once instead of
// per-binary:
//
//   --json[=PATH]    emit the ncs-bench-v1 report ("" or "-" = stdout)
//   --trace[=PATH]   write a Chrome trace (default "<tag>_trace.json")
//   --prof[=PREFIX]  enable the message-lifecycle / overlap profiler for
//                    the bench's profiled run: writes
//                    "<PREFIX>_report.json" (ncs-run-report-v2, per-layer
//                    histograms + overlap ratios) and
//                    "<PREFIX>_trace.json" (flow events included), and the
//                    bench prints the bottleneck table. PREFIX defaults to
//                    the bench tag.
#pragma once

#include <string>

#include "cluster/config.hpp"

namespace ncs::cluster {

struct BenchOptions {
  bool json = false;
  std::string json_path;  // "" = stdout
  bool trace = false;
  std::string trace_path;  // "" = default "<tag>_trace.json"
  bool prof = false;
  std::string prof_prefix;  // "" = default "<tag>"

  /// Applies the trace/profiling flags to one run's config; `tag` names
  /// the run in default output paths. --prof implies a trace (that's where
  /// the flow events live) unless --trace picked an explicit path.
  void apply(ClusterConfig* config, const std::string& tag) const;

  /// The profiled run's report destination ("" when --prof is absent).
  std::string report_path(const std::string& tag) const;
};

/// Scans argv for the shared flags; unknown arguments are ignored (benches
/// with extra flags keep parsing those themselves).
BenchOptions parse_bench_options(int argc, char** argv);

}  // namespace ncs::cluster
