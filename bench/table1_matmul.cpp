// Reproduces Table 1: "Execution times of Matrix Multiplication (seconds)"
// — p4 vs NCS_MTS/p4 on the SUN/Ethernet and ATM (NYNET) testbeds for
// 1/2/4/8 nodes (the paper reports no 8-node ATM row; neither do we).
//
// `--prof` additionally runs a profiled 4-node ATM NCS matmul: prints the
// bottleneck attribution table and writes table1_matmul_report.json
// (ncs-run-report-v3) plus table1_matmul_trace.json (flow events stitch
// each send span to its recv span across host tracks in Perfetto).
#include <cstdio>

#include "cluster/drivers.hpp"
#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/table.hpp"

int main(int argc, char** argv) {
  using namespace ncs::cluster;
  const BenchOptions opts = parse_bench_options(argc, argv);

  std::vector<TableRow> rows;
  bool all_correct = true;

  for (const int nodes : {1, 2, 4, 8}) {
    TableRow row;
    row.nodes = nodes;

    const AppResult p4_eth = run_matmul_p4(sun_ethernet(0), nodes);
    const AppResult ncs_eth = run_matmul_ncs(sun_ethernet(0), nodes);
    row.p4_ethernet = p4_eth.elapsed;
    row.ncs_ethernet = ncs_eth.elapsed;
    all_correct = all_correct && p4_eth.correct && ncs_eth.correct;

    if (nodes <= 4) {
      const AppResult p4_atm = run_matmul_p4(sun_atm_lan(0), nodes);
      const AppResult ncs_atm = run_matmul_ncs(sun_atm_lan(0), nodes);
      row.p4_atm = p4_atm.elapsed;
      row.ncs_atm = ncs_atm.elapsed;
      all_correct = all_correct && p4_atm.correct && ncs_atm.correct;
    } else {
      row.has_atm = false;
    }
    rows.push_back(row);
  }

  std::fputs(format_table("Table 1: Execution times of Matrix Multiplication (seconds), "
                          "128x128 doubles",
                          "SUN/Ethernet", "NYNET (ATM) testbed", rows)
                 .c_str(),
             stdout);
  std::printf("\nresult verification: %s\n", all_correct ? "all runs correct" : "FAILED");

  if (opts.prof) {
    ClusterConfig cfg = sun_atm_lan(0);
    opts.apply(&cfg, "table1_matmul");
    const AppResult profiled = run_matmul_ncs(std::move(cfg), 4);
    all_correct = all_correct && profiled.correct;
    std::printf("\n%s", profiled.bottleneck.c_str());
    std::printf("profiled run artifacts: %s + matching _trace.json\n",
                opts.report_path("table1_matmul").c_str());
  }

  if (opts.json) emit_json(table_json("table1_matmul", rows, all_correct), opts.json_path);
  return all_correct ? 0 : 1;
}
