// Wall-clock microbenchmarks of the ATM substrate: CRC generators, cell
// packing, AAL5/AAL3-4 segmentation and reassembly throughput.
#include <benchmark/benchmark.h>

#include "atm/aal34.hpp"
#include "atm/aal5.hpp"
#include "common/crc.hpp"
#include "common/rng.hpp"

namespace {

using namespace ncs;

Bytes random_bytes(std::size_t n) {
  Rng rng(42);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return b;
}

void BM_Crc32(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crc32_ieee(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Crc10(benchmark::State& state) {
  const Bytes data = random_bytes(48);
  for (auto _ : state) benchmark::DoNotOptimize(crc10_aal34(data));
  state.SetBytesProcessed(state.iterations() * 48);
}
BENCHMARK(BM_Crc10);

void BM_HecComputeVerify(benchmark::State& state) {
  std::uint8_t header[5] = {0x12, 0x34, 0x56, 0x78, 0};
  header[4] = hec_compute(header);
  for (auto _ : state) benchmark::DoNotOptimize(hec_verify(header));
}
BENCHMARK(BM_HecComputeVerify);

void BM_CellPackUnpack(benchmark::State& state) {
  atm::Cell cell;
  cell.header.vci = 77;
  for (std::size_t i = 0; i < atm::Cell::kPayloadSize; ++i)
    cell.payload[i] = static_cast<std::byte>(i);
  std::array<std::byte, atm::Cell::kSize> wire{};
  for (auto _ : state) {
    cell.pack(wire);
    auto r = atm::Cell::unpack(wire);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(atm::Cell::kSize));
}
BENCHMARK(BM_CellPackUnpack);

void BM_Aal5SegmentReassemble(benchmark::State& state) {
  const Bytes payload = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto cells = atm::aal5::segment(atm::VcId{0, 1}, payload);
    atm::aal5::Reassembler reasm;
    std::optional<Result<Bytes>> out;
    for (const auto& c : cells) out = reasm.push(c);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aal5SegmentReassemble)->Arg(1024)->Arg(9180)->Arg(65535);

void BM_Aal34SegmentReassemble(benchmark::State& state) {
  const Bytes payload = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto cells = atm::aal34::segment(atm::VcId{0, 1}, payload);
    atm::aal34::Reassembler reasm;
    std::optional<Result<Bytes>> out;
    for (const auto& c : cells) out = reasm.push(c);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aal34SegmentReassemble)->Arg(1024)->Arg(9180);

}  // namespace

BENCHMARK_MAIN();
