// Reproduces Figure 4: "Overlap of Computation and Communication" — the
// paper's worked matrix-multiplication example on two node processes, with
// and without threads. Prints the per-thread activity timelines (the
// paper's message-sequence diagram, rendered as Gantt tracks) and the
// resulting execution times.
#include <cstdio>
#include <cstring>

#include "apps/matmul.hpp"
#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/cluster.hpp"
#include "cluster/compute.hpp"
#include "obs/prof.hpp"

using namespace ncs;
using namespace ncs::cluster;
using apps::matmul::make_matrix;
using apps::matmul::Matrix;
using apps::matmul::op_count;
using apps::matmul::pack_rows;
using apps::matmul::unpack_rows;

namespace {

constexpr int kNodes = 2;

Duration run_case(bool threaded, std::string* gantt, std::vector<ncs::obs::HostUsage>* hosts) {
  const int n = calibration().matmul_n;
  // Ethernet: the slower wire makes the overlapped window visible.
  ClusterConfig cfg = sun_ethernet(0);
  cfg.n_procs = kNodes + 1;
  Cluster cluster(cfg);
  cluster.enable_timeline();
  cluster.init_ncs_nsm();

  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  const int tpn = threaded ? 2 : 1;
  const int rpt = n / (kNodes * tpn);

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);
    if (rank == 0) {
      std::vector<int> tids;
      for (int t = 0; t < tpn; ++t) {
        tids.push_back(node.t_create([&, t] {
          if (t == 0)
            for (int i = 1; i <= kNodes; ++i) node.send(0, 0, i, pack_rows(b.data(), n, n));
          for (int i = 1; i <= kNodes; ++i) {
            const int slice = (i - 1) * tpn + t;
            node.send(t, t, i,
                      pack_rows(a.data() + static_cast<std::ptrdiff_t>(slice) * rpt * n, rpt, n));
          }
          for (int i = 1; i <= kNodes; ++i) (void)node.recv(t, i, t);
        }, t == 0 ? mts::kDefaultPriority - 1 : mts::kDefaultPriority,
           "host-t" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    } else {
      auto b_local = std::make_shared<std::vector<double>>();
      auto b_ready = std::make_shared<mts::Event>(node.host());
      std::vector<int> tids;
      for (int t = 0; t < tpn; ++t) {
        tids.push_back(node.t_create([&, t, b_local, b_ready] {
          if (t == 0) {
            *b_local = unpack_rows(node.recv(0, 0, 0));
            b_ready->set();
          } else {
            b_ready->wait();
          }
          const auto a_rows = unpack_rows(node.recv(t, 0, t));
          std::vector<double> c_rows(static_cast<std::size_t>(rpt) * static_cast<std::size_t>(n));
          charge_compute(node.host(), op_count(rpt, n) * calibration().matmul_cycles_per_op);
          apps::matmul::multiply_rows(a_rows.data(), b_local->data(), c_rows.data(), n, 0, rpt);
          node.send(t, t, 0, pack_rows(c_rows.data(), rpt, n));
        }, mts::kDefaultPriority, "thread" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    }
  });

  if (gantt != nullptr) {
    // Show only the application threads (system threads clutter the plot).
    sim::Timeline& tl = cluster.timeline();
    std::string full = tl.render_ascii(TimePoint::origin(), TimePoint::origin() + elapsed, 96);
    std::string filtered;
    std::size_t pos = 0;
    while (pos < full.size()) {
      const std::size_t eol = full.find('\n', pos);
      const std::string line = full.substr(pos, eol - pos);
      if (line.find("thread") != std::string::npos || line.find("host-t") != std::string::npos ||
          line.find('[') != std::string::npos)
        filtered += line + "\n";
      pos = eol + 1;
    }
    *gantt = filtered;
  }
  // run() already finished the timeline; fold the per-host overlap sweep.
  if (hosts != nullptr) *hosts = ncs::obs::fold_hosts(cluster.timeline());
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  std::printf("Figure 4: overlap of computation and communication — 128x128 matrix\n");
  std::printf("multiplication on 2 node processes (Ethernet testbed, NCS_MTS/p4).\n\n");

  std::string gantt1, gantt2;
  std::vector<ncs::obs::HostUsage> hosts1, hosts2;
  const Duration without = run_case(false, &gantt1, &hosts1);
  const Duration with = run_case(true, &gantt2, &hosts2);

  std::printf("--- one thread per process (no overlap) --- total %.3f s\n%s\n", without.sec(),
              gantt1.c_str());
  std::printf("--- two threads per process (overlapped) --- total %.3f s\n%s\n", with.sec(),
              gantt2.c_str());
  std::printf("execution time with threads:    %.3f s\n", with.sec());
  std::printf("execution time without threads: %.3f s\n", without.sec());
  std::printf("reduction from overlap:         %.2f %%\n",
              (without - with).sec() / without.sec() * 100.0);
  std::printf("\n%-5s %18s %18s\n", "host", "overlap (1 thread)", "overlap (2 threads)");
  for (const auto& u2 : hosts2) {
    const auto* u1p = [&]() -> const ncs::obs::HostUsage* {
      for (const auto& u : hosts1)
        if (u.host == u2.host) return &u;
      return nullptr;
    }();
    std::printf("%-5s %17.0f%% %17.0f%%\n", u2.host.c_str(),
                u1p != nullptr ? u1p->overlap_ratio() * 100.0 : 0.0,
                u2.overlap_ratio() * 100.0);
  }

  if (opts.json) {
    BenchReport report("fig4_overlap");
    const struct {
      const char* variant;
      const std::vector<ncs::obs::HostUsage>& hosts;
    } cases[] = {{"single_thread", hosts1}, {"two_threads", hosts2}};
    for (const auto& c : cases) {
      for (const auto& u : c.hosts) {
        report.row();
        report.set("variant", std::string(c.variant));
        report.set("host", u.host);
        report.set("compute_sec", u.compute.sec());
        report.set("communicate_sec", u.communicate.sec());
        report.set("overlapped_sec", u.overlapped.sec());
        report.set("overlap_ratio", u.overlap_ratio());
      }
    }
    report.summary("elapsed_without_sec", without.sec());
    report.summary("elapsed_with_sec", with.sec());
    report.summary("reduction_pct", (without - with).sec() / without.sec() * 100.0);
    report.emit(opts.json_path);
  }
  // The overlap gain for this algorithm is bounded by the B broadcast that
  // precedes all computation (see EXPERIMENTS.md); require only that
  // threading does not lose.
  return with.sec() <= without.sec() * 1.02 ? 0 : 1;
}
