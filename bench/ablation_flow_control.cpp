// Ablation: NCS flow-control and error-control policies (the paper's
// Fig 5 QOS argument, quantified).
//
//  1. A bursty sender into a slow consumer: window flow control bounds the
//     receiver-side backlog that `none` lets grow without limit.
//  2. A VOD-style stream: rate pacing smooths injection and keeps
//     per-message latency flat, where greedy injection oscillates.
//  3. A lossy WAN hop: retransmitting error control delivers everything;
//     without it messages vanish (raw AAL5 detects, NCS must recover).
#include <cmath>
#include <cstdio>

#include "cluster/bench_json.hpp"
#include "cluster/cluster.hpp"

using namespace ncs;
using namespace ncs::cluster;
using namespace ncs::literals;

namespace {

struct BacklogResult {
  std::size_t peak_backlog = 0;
  Duration makespan;
  std::uint64_t stalls = 0;
};

BacklogResult burst_into_slow_consumer(mps::FlowControlKind kind) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.n_procs = 2;
  cfg.ncs.flow.kind = kind;
  cfg.ncs.flow.window = 4;
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr int kMessages = 64;
  BacklogResult result;
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      if (rank == 0) {
        for (int i = 0; i < kMessages; ++i) node.send(0, 0, 1, Bytes(8000, std::byte{1}));
      } else {
        for (int i = 0; i < kMessages; ++i) {
          (void)node.recv(0, 0, 0);
          // Slow consumer: 5 ms of processing per message.
          node.host().charge_cycles(0.005 * 40e6, sim::Activity::compute);
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  result.makespan = Duration::picoseconds(c.engine().now().ps());
  result.stalls = c.node(0).flow_control().stats().window_stalls;
  return result;
}

void vod_stream(mps::FlowControlKind kind, double* jitter_ms, double* mean_gap_ms) {
  // 24 frames/s video: 48 frames of 16 KB each; measure inter-arrival gap
  // statistics at the receiver.
  ClusterConfig cfg = nynet_wan(2);
  cfg.n_procs = 2;
  cfg.ncs.flow.kind = kind;
  cfg.ncs.flow.rate_bytes_per_sec = 16384.0 * 24;  // exactly the stream rate
  Cluster c(cfg);
  c.init_ncs_hsm();

  std::vector<double> arrivals;
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      constexpr int kFrames = 48;
      if (rank == 0) {
        for (int i = 0; i < kFrames; ++i) node.send(0, 0, 1, Bytes(16384, std::byte{1}));
      } else {
        for (int i = 0; i < kFrames; ++i) {
          (void)node.recv(0, 0, 0);
          arrivals.push_back(c.engine().now().sec());
        }
      }
    });
    node.host().join(node.user_thread(t));
  });

  double mean = 0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
    mean += gaps.back();
  }
  mean /= static_cast<double>(gaps.size());
  double var = 0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  *jitter_ms = std::sqrt(var / static_cast<double>(gaps.size())) * 1e3;
  *mean_gap_ms = mean * 1e3;
}

struct LossResult {
  int delivered = 0;
  std::uint64_t retransmits = 0;
};

LossResult lossy_wan(mps::ErrorControlKind kind) {
  ClusterConfig cfg = nynet_wan(2);
  cfg.n_procs = 2;
  cfg.wan_backbone.loss_probability = 0.08;
  cfg.ncs.error.kind = kind;
  cfg.ncs.error.rto = 25_ms;
  Cluster c(cfg);
  c.init_ncs_hsm();

  constexpr int kMessages = 40;
  LossResult result;
  for (int r = 0; r < 2; ++r) {
    c.host(r).spawn([&c, r, &result] {
      mps::Node& node = c.node(r);
      if (r == 0) {
        for (int i = 0; i < kMessages; ++i) node.send(0, 0, 1, Bytes(4000, std::byte{1}));
      } else {
        for (int i = 0; i < kMessages; ++i) {
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
          ++result.delivered;
        }
      }
    }, {.name = "main"});
  }
  c.engine().run_until(TimePoint::origin() + 10_sec);
  result.retransmits = c.node(0).error_control().stats().retransmits;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("ablation_flow_control");
  std::printf("Ablation: NCS flow-control / error-control policies "
              "(NCS_init(flow, error) selection)\n\n");

  std::printf("1. Burst of 64 x 8 KB into a slow consumer (HSM, ATM LAN):\n");
  for (const auto kind : {mps::FlowControlKind::none, mps::FlowControlKind::window}) {
    const auto r = burst_into_slow_consumer(kind);
    std::printf("   flow=%-7s makespan %7.1f ms   sender window stalls %llu\n",
                mps::to_string(kind), r.makespan.ms(),
                static_cast<unsigned long long>(r.stalls));
    report.row();
    report.set("experiment", std::string("slow_consumer"));
    report.set("flow", std::string(mps::to_string(kind)));
    report.set("makespan_ms", r.makespan.ms());
    report.set("window_stalls", r.stalls);
  }
  std::printf("   (same makespan — the consumer is the bottleneck — but the window\n"
              "   policy bounds the unacknowledged backlog instead of dumping the\n"
              "   whole burst into the receiver's buffers.)\n\n");

  std::printf("2. 24 fps x 16 KB VOD stream over the WAN (HSM):\n");
  for (const auto kind : {mps::FlowControlKind::none, mps::FlowControlKind::rate}) {
    double jitter = 0, gap = 0;
    vod_stream(kind, &jitter, &gap);
    std::printf("   flow=%-7s mean inter-frame gap %6.2f ms   jitter (stddev) %6.3f ms\n",
                mps::to_string(kind), gap, jitter);
    report.row();
    report.set("experiment", std::string("vod_stream"));
    report.set("flow", std::string(mps::to_string(kind)));
    report.set("mean_gap_ms", gap);
    report.set("jitter_ms", jitter);
  }
  std::printf("   (rate pacing delivers frames on the stream's own cadence; greedy\n"
              "   injection burns the link in a burst and then goes idle.)\n\n");

  std::printf("3. 40 x 4 KB over an 8%%-lossy DS-3 hop:\n");
  for (const auto kind : {mps::ErrorControlKind::none, mps::ErrorControlKind::retransmit}) {
    const auto r = lossy_wan(kind);
    std::printf("   error=%-10s delivered %2d/40   retransmissions %llu\n",
                mps::to_string(kind), r.delivered,
                static_cast<unsigned long long>(r.retransmits));
    report.row();
    report.set("experiment", std::string("lossy_wan"));
    report.set("error", std::string(mps::to_string(kind)));
    report.set("delivered", r.delivered);
    report.set("retransmits", r.retransmits);
  }
  std::printf("   (raw AAL5 detects damage but cannot recover it; the NCS error-\n"
              "   control thread restores exactly-once delivery.)\n");
  if (std::string json_path; parse_json_flag(argc, argv, &json_path)) report.emit(json_path);
  return 0;
}
