// Reproduces Figure 3: the communication datapath comparison.
//
// (a) socket/TCP path: application buffer -> socket buffer -> TCP -> NIC:
//     5 memory-bus accesses per word, syscall entry, per-segment protocol
//     processing.
// (b) NCS path: application buffer -> mmap'ed kernel buffer -> NIC:
//     3 accesses per word, cheap trap, per-chunk bookkeeping.
//
// The paper draws the stacks; the measurable consequence is host-side CPU
// time per message and the effective memory-limited throughput, printed
// here per message size for a 33 MHz (ELC) and a 40 MHz (IPX) host.
#include <algorithm>
#include <cstdio>
#include <initializer_list>

#include "proto/costs.hpp"

using namespace ncs;

int main() {
  const proto::CostModel m;

  std::printf("Figure 3: host datapath cost, socket/TCP (5 accesses/word) vs\n");
  std::printf("NCS mmap'ed buffers (3 accesses/word). CPU cost per message and\n");
  std::printf("effective host-limited throughput, 40 MHz SPARCstation IPX.\n\n");

  std::printf("%10s  %14s  %14s  %9s  %12s  %12s\n", "bytes", "tcp-path (us)", "ncs-path (us)",
              "ratio", "tcp (MB/s)", "ncs (MB/s)");

  const double mhz = 40.0;
  for (const std::size_t bytes :
       {64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u, 1048576u}) {
    const double tcp_cycles = m.tcp_side_cycles(bytes, 1460);
    double ncs_cycles = 0;
    for (std::size_t off = 0; off < bytes; off += 4096)
      ncs_cycles += m.ncs_chunk_cycles(std::min<std::size_t>(4096, bytes - off));

    const double tcp_us = tcp_cycles / mhz;
    const double ncs_us = ncs_cycles / mhz;
    std::printf("%10zu  %14.1f  %14.1f  %8.2fx  %12.2f  %12.2f\n", bytes, tcp_us, ncs_us,
                tcp_us / ncs_us, static_cast<double>(bytes) / tcp_us,
                static_cast<double>(bytes) / ncs_us);
  }

  std::printf("\nThe copy portion alone has exactly the paper's access ratio (4\n"
              "protocol accesses/word vs 2, i.e. 5 vs 3 counting the application's\n"
              "own write); the measured large-message ratio is higher because TCP\n"
              "also pays per-segment protocol processing every %zu bytes while the\n"
              "NCS path pays only a per-chunk trap. Small messages are dominated\n"
              "by the syscall-vs-trap gap (%.0f vs %.0f cycles).\n",
              std::size_t{1460}, m.syscall_cycles, m.trap_cycles);

  // Invariants guarding the table.
  const double big_ratio = m.copy_cycles(1 << 20, m.tcp_accesses_per_word) /
                           m.copy_cycles(1 << 20, m.ncs_accesses_per_word);
  if (big_ratio < 1.9 || big_ratio > 2.1) {
    std::printf("UNEXPECTED: access ratio drifted\n");
    return 1;
  }
  return 0;
}
