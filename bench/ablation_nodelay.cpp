// Ablation: Nagle's algorithm vs TCP_NODELAY under the p4 runtime.
//
// p4 (like every message-passing library of the era) sets TCP_NODELAY; the
// presets reproduce that. This bench shows why: with Nagle + the BSD
// 200 ms delayed ack, every sub-MSS message tail stalls, and the FFT's
// small-message exchanges collapse.
#include <cstdio>

#include "cluster/bench_json.hpp"
#include "cluster/drivers.hpp"

using namespace ncs;
using namespace ncs::cluster;

namespace {

ClusterConfig with_nagle(ClusterConfig cfg, bool nagle) {
  cfg.tcp.nagle = nagle;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("ablation_nodelay");
  const auto record = [&report](const char* app, int nodes, const AppResult& fast,
                                const AppResult& slow) {
    report.row();
    report.set("app", std::string(app));
    report.set("nodes", nodes);
    report.set("nodelay_sec", fast.elapsed.sec());
    report.set("nagle_sec", slow.elapsed.sec());
  };
  std::printf("Ablation: Nagle vs TCP_NODELAY on the p4 runtime (Ethernet)\n\n");
  std::printf("%-22s %14s %14s %10s\n", "workload", "NODELAY (s)", "Nagle (s)", "slowdown");

  for (const int nodes : {2, 4}) {
    const auto fast = run_fft_p4(with_nagle(sun_ethernet(0), false), nodes);
    const auto slow = run_fft_p4(with_nagle(sun_ethernet(0), true), nodes);
    std::printf("fft, %d nodes%9s %14.3f %14.3f %9.2fx\n", nodes, "", fast.elapsed.sec(),
                slow.elapsed.sec(), slow.elapsed.sec() / fast.elapsed.sec());
    record("fft", nodes, fast, slow);
  }
  for (const int nodes : {2, 4}) {
    const auto fast = run_matmul_p4(with_nagle(sun_ethernet(0), false), nodes);
    const auto slow = run_matmul_p4(with_nagle(sun_ethernet(0), true), nodes);
    std::printf("matmul, %d nodes%6s %14.3f %14.3f %9.2fx\n", nodes, "", fast.elapsed.sec(),
                slow.elapsed.sec(), slow.elapsed.sec() / fast.elapsed.sec());
    record("matmul", nodes, fast, slow);
  }

  std::printf("\n(Small FFT exchange messages hit the classic Nagle/delayed-ack\n"
              "interaction — up to a 200 ms stall per message tail; bulk matmul\n"
              "transfers mostly stream at full MSS and barely notice.)\n");
  if (std::string json_path; parse_json_flag(argc, argv, &json_path)) report.emit(json_path);
  return 0;
}
