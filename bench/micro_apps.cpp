// Wall-clock microbenchmarks of the application kernels: DCT, Huffman,
// whole-image JPEG codec, FFT and the matmul inner loop.
#include <benchmark/benchmark.h>

#include "apps/fft.hpp"
#include "apps/jpeg/codec.hpp"
#include "apps/jpeg/dct.hpp"
#include "apps/jpeg/huffman.hpp"
#include "apps/matmul.hpp"

namespace {

using namespace ncs;
using namespace ncs::apps;

void BM_ForwardDct(benchmark::State& state) {
  jpeg::Block in, out;
  for (int i = 0; i < 64; ++i) in[static_cast<std::size_t>(i)] = (i * 37 % 255) - 128.0;
  for (auto _ : state) {
    jpeg::forward_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct);

void BM_InverseDct(benchmark::State& state) {
  jpeg::Block in, out;
  for (int i = 0; i < 64; ++i) in[static_cast<std::size_t>(i)] = (i % 7) * 10.0;
  for (auto _ : state) {
    jpeg::inverse_dct(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InverseDct);

void BM_JpegCompress(benchmark::State& state) {
  const Image img = make_test_image(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    auto stream = jpeg::compress(img);
    benchmark::DoNotOptimize(stream);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(img.size_bytes()));
}
BENCHMARK(BM_JpegCompress)->Arg(128)->Arg(512);

void BM_JpegDecompress(benchmark::State& state) {
  const Image img = make_test_image(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)), 3);
  const Bytes stream = jpeg::compress(img);
  for (auto _ : state) {
    auto out = jpeg::decompress(stream);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(img.size_bytes()));
}
BENCHMARK(BM_JpegDecompress)->Arg(128)->Arg(512);

void BM_HuffmanEncode(benchmark::State& state) {
  std::vector<std::uint64_t> freq(64, 1);
  freq[0] = 1000;
  freq[1] = 300;
  const auto table = jpeg::HuffmanTable::build(freq);
  std::vector<int> symbols;
  for (int i = 0; i < 4096; ++i) symbols.push_back(i % 23 == 0 ? i % 64 : 0);
  for (auto _ : state) {
    jpeg::BitWriter w;
    for (int s : symbols) table.encode(w, s);
    auto out = w.finish();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_HuffmanEncode);

void BM_Fft(benchmark::State& state) {
  const auto samples = fft::make_samples(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto out = fft::fft(samples);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(512)->Arg(4096);

void BM_MatmulKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = matmul::make_matrix(n, 1);
  const auto b = matmul::make_matrix(n, 2);
  matmul::Matrix c(a.size());
  for (auto _ : state) {
    matmul::multiply_rows(a.data(), b.data(), c.data(), n, 0, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matmul::op_count(n, n)));
}
BENCHMARK(BM_MatmulKernel)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
