// Collective-algorithm sweep: payload size x process count x algorithm on
// the ATM LAN tier, for the two ops where the algorithm choice matters
// most (bcast: flat vs binomial tree fan-out; allreduce: flat convergecast
// vs recursive doubling vs chunk-pipelined ring). Every case forces one
// algorithm through ClusterConfig::ncs.coll and times `iters` back-to-back
// collectives in simulated time; a '*' (and "selected" in the JSON) marks
// the algorithm coll::select would pick on its own at that point, so the
// printed table shows directly whether the selection table's crossovers
// sit where the measured ones do.
//
// The sweep ends with the collective-API application drivers
// (matmul/jpeg/fft _coll at 4 nodes) so their end-to-end times ride the
// same bench-diff gate as the algorithm grid.
//
//   --fast   CI-sized grid (P in {4,8}, two payload sizes)
//   --json   ncs-bench-v1 rows: op/algorithm/n_procs/payload_bytes/
//            per_op_us/selected, summary crossover speedups
//   --prof   profiled ring-allreduce run (P=8, 256 KiB): prints the
//            bottleneck table with the per-algorithm collectives section
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/drivers.hpp"
#include "coll/select.hpp"

namespace {

using namespace ncs;
using namespace ncs::cluster;

struct CaseResult {
  double per_op_us = 0.0;
  bool correct = false;
};

std::byte pattern_at(std::size_t i) {
  return static_cast<std::byte>((i * 31 + 7) & 0xFF);
}

void run_collectives(mps::Node& node, coll::Op op, int procs, std::size_t bytes, int iters,
                     bool* ok) {
  if (op == coll::Op::bcast) {
    Bytes payload;
    if (node.rank() == 0) {
      payload.resize(bytes);
      for (std::size_t i = 0; i < bytes; ++i) payload[i] = pattern_at(i);
    }
    for (int it = 0; it < iters; ++it) {
      const Bytes out = node.bcast(0, payload);
      if (out.size() != bytes) *ok = false;
      for (std::size_t i = 0; i < out.size(); i += 97)
        if (out[i] != pattern_at(i)) *ok = false;
    }
  } else {
    const std::size_t n = bytes / sizeof(double);
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = static_cast<double>(node.rank() + 1) * static_cast<double>(i % 17 + 1);
    // Small-integer contributions: the rank sums are exact in FP, so the
    // check is equality — which doubles as a determinism check on the
    // fixed accumulation order.
    const double ranks = static_cast<double>(procs) * static_cast<double>(procs + 1) / 2.0;
    for (int it = 0; it < iters; ++it) {
      const auto r = node.allreduce_sum(v);
      if (r.size() != n) *ok = false;
      for (std::size_t i = 0; i < r.size(); i += 61)
        if (r[i] != ranks * static_cast<double>(i % 17 + 1)) *ok = false;
    }
  }
}

CaseResult run_case(coll::Op op, coll::Algorithm algo, int procs, std::size_t bytes,
                    int iters) {
  ClusterConfig cfg = sun_atm_lan(procs);
  cfg.ncs.coll.set_force(op, algo);
  Cluster cluster(std::move(cfg));
  cluster.init_ncs_hsm();

  bool ok = true;
  const Duration elapsed = cluster.run([&](int rank) {
    run_collectives(cluster.node(rank), op, procs, bytes, iters, &ok);
  });
  return {elapsed.sec() * 1e6 / iters, ok};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  const std::vector<int> procs = fast ? std::vector<int>{4, 8} : std::vector<int>{2, 4, 8, 16};
  const std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{8192, 262144}
           : std::vector<std::size_t>{1024, 16384, 262144};
  constexpr int kIters = 2;

  struct Sweep {
    coll::Op op;
    std::vector<coll::Algorithm> algos;
  };
  const std::vector<Sweep> sweeps = {
      {coll::Op::bcast, {coll::Algorithm::flat, coll::Algorithm::binomial_tree}},
      {coll::Op::allreduce,
       {coll::Algorithm::flat, coll::Algorithm::recursive_doubling, coll::Algorithm::ring}},
  };

  BenchReport report("coll_sweep");
  bool all_correct = true;
  std::map<std::string, double> us;
  const auto key = [](coll::Op op, coll::Algorithm a, int p, std::size_t b) {
    return std::string(coll::to_string(op)) + "/" + coll::to_string(a) + "/" +
           std::to_string(p) + "/" + std::to_string(b);
  };

  std::printf("collective sweep, ATM LAN (HSM), %d iterations per case; "
              "'*' = coll::select's own pick\n",
              kIters);
  for (const Sweep& s : sweeps) {
    for (const int p : procs) {
      for (const std::size_t bytes : sizes) {
        std::printf("%-9s P=%-2d %7zu B:", coll::to_string(s.op), p, bytes);
        for (const coll::Algorithm algo : s.algos) {
          const CaseResult r = run_case(s.op, algo, p, bytes, kIters);
          all_correct = all_correct && r.correct;
          const bool selected = coll::select(s.op, p, bytes, coll::Params{}) == algo;
          us[key(s.op, algo, p, bytes)] = r.per_op_us;

          report.row();
          report.set("op", std::string(coll::to_string(s.op)));
          report.set("algorithm", std::string(coll::to_string(algo)));
          report.set("n_procs", p);
          report.set("payload_bytes", static_cast<std::int64_t>(bytes));
          report.set("per_op_us", r.per_op_us);
          report.set("selected", selected);
          std::printf("  %-18s %9.1f us%s", coll::to_string(algo), r.per_op_us,
                      selected ? "*" : " ");
        }
        std::printf("\n");
      }
    }
  }

  // The crossover claims the selection table encodes, measured at the
  // sweep's largest group and payload: the tree and the ring must beat
  // flat there or the sweep fails.
  const int big_p = procs.back();
  const std::size_t big = sizes.back();
  const double tree_speedup = us[key(coll::Op::bcast, coll::Algorithm::flat, big_p, big)] /
                              us[key(coll::Op::bcast, coll::Algorithm::binomial_tree, big_p, big)];
  const double ring_speedup =
      us[key(coll::Op::allreduce, coll::Algorithm::flat, big_p, big)] /
      us[key(coll::Op::allreduce, coll::Algorithm::ring, big_p, big)];
  std::printf("at P=%d, %zu B: binomial bcast %.2fx vs flat, ring allreduce %.2fx vs flat\n",
              big_p, big, tree_speedup, ring_speedup);
  report.summary("bcast_tree_speedup", tree_speedup);
  report.summary("allreduce_ring_speedup", ring_speedup);
  all_correct = all_correct && tree_speedup > 1.0 && ring_speedup > 1.0;

  // End-to-end collective-API drivers (autoselected algorithms).
  const struct {
    const char* name;
    AppResult (*run)(ClusterConfig, int, NcsTier);
  } apps[] = {{"matmul_coll", run_matmul_coll},
              {"jpeg_coll", run_jpeg_coll},
              {"fft_coll", run_fft_coll}};
  for (const auto& app : apps) {
    const AppResult r = app.run(sun_atm_lan(0), 4, NcsTier::hsm_atm);
    all_correct = all_correct && r.correct;
    report.row();
    report.set("op", std::string(app.name));
    report.set("n_procs", 4);
    report.set("elapsed_sec", r.elapsed.sec());
    std::printf("%-12s 4 nodes: %.3fs (%s)\n", app.name, r.elapsed.sec(),
                r.correct ? "correct" : "WRONG");
  }

  std::printf("result verification: %s\n", all_correct ? "all cases correct" : "FAILED");

  if (opts.prof) {
    ClusterConfig cfg = sun_atm_lan(8);
    cfg.ncs.coll.set_force(coll::Op::allreduce, coll::Algorithm::ring);
    opts.apply(&cfg, "coll_sweep");
    Cluster cluster(std::move(cfg));
    cluster.init_ncs_hsm();
    bool ok = true;
    cluster.run([&](int rank) {
      run_collectives(cluster.node(rank), coll::Op::allreduce, 8, 262144, kIters, &ok);
    });
    all_correct = all_correct && ok;
    std::printf("\n%s", bottleneck_report(cluster).c_str());
    std::printf("profiled run artifacts: %s + matching _trace.json\n",
                opts.report_path("coll_sweep").c_str());
  }

  if (opts.json) report.emit(opts.json_path);
  return all_correct ? 0 : 1;
}
