// Ablation: threads per node process (the paper fixes 2; here 1/2/4) and
// the scheduler's context-switch cost, for the matmul workload.
#include <cstdio>

#include "cluster/bench_json.hpp"
#include "cluster/drivers.hpp"

using namespace ncs;
using namespace ncs::cluster;

int main(int argc, char** argv) {
  BenchReport report("ablation_threads");
  std::printf("Ablation: threads per node process, 4-node matmul\n\n");
  std::printf("%-14s %12s %12s\n", "threads/node", "Ethernet (s)", "ATM LAN (s)");
  for (const int tpn : {1, 2, 4}) {
    const auto eth = run_matmul_ncs(sun_ethernet(0), 4, NcsTier::nsm_p4, tpn);
    const auto atm = run_matmul_ncs(sun_atm_lan(0), 4, NcsTier::nsm_p4, tpn);
    std::printf("%-14d %12.3f %12.3f   %s\n", tpn, eth.elapsed.sec(), atm.elapsed.sec(),
                eth.correct && atm.correct ? "" : "INCORRECT RESULT");
    report.row();
    report.set("experiment", std::string("threads_per_node"));
    report.set("threads_per_node", tpn);
    report.set("ethernet_sec", eth.elapsed.sec());
    report.set("atm_sec", atm.elapsed.sec());
    report.set("correct", eth.correct && atm.correct);
  }
  std::printf("\n(Each extra thread halves the chunk the node can start on, but\n"
              "adds per-message costs; two threads — the paper's choice — is near\n"
              "the knee for this workload.)\n\n");

  std::printf("Ablation: context-switch cost, 4-node NCS matmul on Ethernet\n\n");
  std::printf("%-22s %12s\n", "switch cost (us)", "time (s)");
  for (const double us : {0.0, 8.0, 50.0, 200.0}) {
    ClusterConfig cfg = sun_ethernet(0);
    cfg.context_switch_cost = Duration::microseconds(us);
    const auto r = run_matmul_ncs(cfg, 4);
    std::printf("%-22.0f %12.3f\n", us, r.elapsed.sec());
    report.row();
    report.set("experiment", std::string("context_switch_cost"));
    report.set("switch_cost_us", us);
    report.set("ethernet_sec", r.elapsed.sec());
    report.set("correct", r.correct);
  }
  std::printf("\n(The paper attributes NCS's small one-node deficit to thread\n"
              "maintenance; a QuickThreads-class switch is cheap enough that even\n"
              "a 25x slower one barely registers at this message granularity.)\n\n");

  std::printf("Ablation: cores per host, 4-node NCS matmul on Ethernet, 4 threads/node\n\n");
  std::printf("%-10s %12s %10s   per-core dispatches\n", "cores", "time (s)", "steals");
  for (const int cores : {1, 2, 4}) {
    ClusterConfig cfg = sun_ethernet(0);
    cfg.cores = cores;
    const auto r = run_matmul_ncs(cfg, 4, NcsTier::nsm_p4, 4);
    std::string percore;
    for (const auto& u : r.cores) {
      if (u.proc != 1) continue;  // one node process is representative
      percore += (percore.empty() ? "p1: " : " ") + std::to_string(u.dispatches);
    }
    std::printf("%-10d %12.3f %10llu   %s%s\n", cores, r.elapsed.sec(),
                static_cast<unsigned long long>(r.steals), percore.c_str(),
                r.correct ? "" : "  INCORRECT RESULT");
    for (const auto& u : r.cores) {
      report.row();
      report.set("experiment", std::string("cores_per_host"));
      report.set("cores", cores);
      report.set("proc", u.proc);
      report.set("core", u.core);
      report.set("dispatches", u.dispatches);
      report.set("steals", u.steals_in);
      report.set("cpu_busy_us", static_cast<double>(u.cpu_busy.ps()) * 1e-6);
      report.set("elapsed_sec", r.elapsed.sec());
      report.set("correct", r.correct);
    }
  }
  std::printf("\n(Extra cores let a node's compute threads charge in parallel; the\n"
              "work-stealing queues keep them busy without losing determinism.)\n");
  if (std::string json_path; parse_json_flag(argc, argv, &json_path)) report.emit(json_path);
  return 0;
}
