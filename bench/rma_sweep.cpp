// One-sided RMA sweep: NCS_put/NCS_get against the two-sided paths.
//
// Four experiments:
//
//   latency   ping-pong one-way latency at P=2 on the ATM LAN (HSM):
//             one-sided put-with-notify against legacy send/recv and the
//             eager proto engine, across payload sizes; plus the get
//             round trip. A put costs one descriptor post at the
//             initiator and pure firmware time at the target — no recv
//             matching, no thread wake — so it must win at small sizes.
//             Claim (gates the exit code): put one-way latency beats
//             send/recv at every size <= 1 KiB.
//   rate      streaming small-message rate at P=2: back-to-back puts
//             under the credit window vs back-to-back sends (window flow
//             control). Keys are *_per_sec (rate class in bench_diff).
//   counter   a single distributed NCS_fetch_add counter hammered by all
//             ranks of a multi-site SONET WAN chain, P in {8, 64}, only
//             the (i, 0) spoke pairs provisioned. The sum must be exactly
//             P * iters (gates the exit code) — remote atomics serialize
//             at the target adapter, not in any lock.
//   chaos     the counter under a Gilbert-Elliott burst on the WAN
//             backbone with retransmission: exact sum, retransmits > 0,
//             and a bit-identical completion digest across two repeats
//             (gates the exit code).
//
//   --fast    CI-sized run (fewer iterations, fewer sizes, P=8 only)
//   --json    ncs-bench-v1 rows; summary put_small_latency_ok /
//             counter_exact / chaos_identical / all_ok
//   --telemetry  adds a 64 B put-stream run with the live plane on:
//             windowed rma/op p99 / p99.9 rows and a latency SLO that
//             must hold in every window (gates the exit code)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "core/mps/node.hpp"
#include "rma/engine.hpp"

namespace {

using namespace ncs;
using namespace ncs::cluster;

Bytes patterned(std::size_t n, std::uint32_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::byte>((i * 131 + salt * 29) & 0xFF);
  return b;
}

// --- latency: P=2 LAN ping-pong, one-way = elapsed / (2 * iters) ---

double pingpong_put_us(std::size_t payload, int iters) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();
  const Bytes ball = patterned(payload, 7);
  const Duration elapsed = c.run([&](int rank) {
    rma::Engine& rma = c.rma(rank);
    rma.create_window(0, std::max<std::size_t>(payload, 64));
    c.node(rank).barrier();
    for (int i = 0; i < iters; ++i) {
      if (rank == 0) {
        rma.put(1, 0, 0, ball, /*notify=*/true);
        while (rma.cq().wait().kind != rma::OpKind::remote_put) {
        }
      } else {
        while (rma.cq().wait().kind != rma::OpKind::remote_put) {
        }
        rma.put(0, 0, 0, ball, /*notify=*/true);
      }
    }
    if (rank == 1) rma.fence();
    c.node(rank).barrier();
  });
  return elapsed.sec() * 1e6 / (2.0 * iters);
}

double pingpong_get_us(std::size_t payload, int iters) {
  // One get is already a full round trip: request out, data back.
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();
  const Duration elapsed = c.run([&](int rank) {
    rma::Engine& rma = c.rma(rank);
    rma.create_window(0, std::max<std::size_t>(payload, 64));
    c.node(rank).barrier();
    if (rank == 0) {
      for (int i = 0; i < iters; ++i) {
        rma.get(1, 0, 0, 0, 0, static_cast<std::uint32_t>(payload));
        rma.cq().wait();
      }
    }
    c.node(rank).barrier();
  });
  return elapsed.sec() * 1e6 / (2.0 * iters);
}

double pingpong_sendrecv_us(std::size_t payload, int iters, mps::ProtoMode mode) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.ncs.proto.mode = mode;
  Cluster c(cfg);
  c.init_ncs_hsm();
  const Bytes ball = patterned(payload, 7);
  const Duration elapsed = c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&node, rank, &ball, iters] {
      for (int i = 0; i < iters; ++i) {
        if (rank == 0) {
          node.send(0, 0, 1, ball);
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
        } else {
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
          node.send(0, 0, 0, ball);
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  return elapsed.sec() * 1e6 / (2.0 * iters);
}

// --- rate: streaming small messages, P=2 LAN ---

double stream_puts_per_sec(std::size_t payload, int count) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.rma_enabled = true;
  Cluster c(cfg);
  c.init_ncs_hsm();
  const Bytes msg = patterned(payload, 3);
  const Duration elapsed = c.run([&](int rank) {
    rma::Engine& rma = c.rma(rank);
    rma.create_window(0, 4096);
    c.node(rank).barrier();
    if (rank == 0) {
      for (int i = 0; i < count; ++i)
        rma.put(1, 0, (static_cast<std::uint64_t>(i) % 8) * 512, msg);
      rma.fence();
    }
    c.node(rank).barrier();
  });
  return count / elapsed.sec();
}

double stream_sends_per_sec(std::size_t payload, int count, mps::ProtoMode mode) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.ncs.flow = {.kind = mps::FlowControlKind::window, .window = 8};
  cfg.ncs.proto.mode = mode;
  Cluster c(cfg);
  c.init_ncs_hsm();
  const Bytes msg = patterned(payload, 3);
  const Duration elapsed = c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&node, rank, &msg, count] {
      if (rank == 0) {
        for (int i = 0; i < count; ++i) node.send(0, 0, 1, msg);
      } else {
        for (int i = 0; i < count; ++i)
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      }
    });
    node.host().join(node.user_thread(t));
  });
  return count / elapsed.sec();
}

// --- counter: distributed fetch_add on the multi-site WAN chain ---

struct CounterResult {
  bool exact = false;
  double ops_per_sec = 0.0;  // simulated atomic throughput at the hot window
  double sim_elapsed_sec = 0.0;
};

CounterResult run_counter(int n_procs, int iters) {
  ClusterConfig cfg = nynet_wan_multi(n_procs, std::min(8, std::max(1, n_procs / 8)));
  // Spoke provisioning only: every rank talks to the counter's home.
  for (int i = 1; i < n_procs; ++i) {
    cfg.wan_provision.emplace_back(i, 0);
    cfg.wan_provision.emplace_back(0, i);
  }
  cfg.rma_enabled = true;
  // The chain RTT at P=64 (7 SONET hops each way) plus target queueing can
  // exceed the LAN-sized default response timeout; spurious retransmits
  // are harmless (idempotent) but slow the sweep down.
  cfg.rma.response_timeout = Duration::milliseconds(200);
  Cluster c(cfg);
  c.init_ncs_hsm();

  const Duration elapsed = c.run([&](int rank) {
    rma::Engine& rma = c.rma(rank);
    rma.create_window(0, 64);
    // No barrier: sparse spokes don't carry collective traffic. Requests
    // racing ahead of rank 0's registration are simply retried.
    for (int i = 0; i < iters; ++i) rma.fetch_add(0, 0, 0, 1);
    rma.fence();
  });

  CounterResult r;
  const std::uint64_t want = static_cast<std::uint64_t>(n_procs) * static_cast<std::uint64_t>(iters);
  r.exact = c.rma(0).window(0)->load_u64(0) == want;
  r.sim_elapsed_sec = elapsed.sec();
  r.ops_per_sec = static_cast<double>(want) / elapsed.sec();
  return r;
}

// --- chaos: the counter under a bursty backbone, twice ---

struct ChaosResult {
  bool exact = false;
  std::uint64_t retransmits = 0;
  std::uint64_t digest = 0;
};

ChaosResult run_chaos(int iters) {
  constexpr int kProcs = 4;
  ClusterConfig cfg = nynet_wan(kProcs);
  cfg.rma_enabled = true;
  // The retry budget must outlast the 400 ms burst window or increments
  // are (correctly) failed back to the initiator instead of recovered.
  cfg.rma.retry_limit = 40;
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit,
                   .rto = Duration::milliseconds(100)};
  cfg.faults.seed = 1234;
  cfg.faults.link_burst("sonet", TimePoint::origin() + Duration::milliseconds(1),
                        Duration::milliseconds(400),
                        {.p_good_to_bad = 0.3, .p_bad_to_good = 0.3, .loss_bad = 0.8});
  Cluster c(cfg);
  c.init_ncs_hsm();

  c.run([&](int rank) {
    rma::Engine& rma = c.rma(rank);
    rma.create_window(0, 64);
    c.node(rank).barrier();
    for (int i = 0; i < iters; ++i) rma.fetch_add(0, 0, 0, 1);
    rma.fence();
    c.node(rank).barrier();
  });

  ChaosResult r;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over completion streams
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (int p = 0; p < kProcs; ++p) {
    while (auto done = c.rma(p).cq().poll()) {
      mix(done->op_id);
      mix(done->value);
      mix(static_cast<std::uint64_t>(done->at.ps()));
    }
    r.retransmits += c.rma(p).stats().retransmits;
  }
  r.exact =
      c.rma(0).window(0)->load_u64(0) == static_cast<std::uint64_t>(kProcs) * static_cast<std::uint64_t>(iters);
  mix(static_cast<std::uint64_t>((c.engine().now() - TimePoint::origin()).ps()));
  r.digest = h;
  return r;
}

// --- telemetry: the P=2 put stream with the live plane on ---

struct TelemetryRun {
  BenchTelemetry t;
  double puts_per_sec = 0.0;
};

TelemetryRun run_telemetry(std::size_t payload, int count, const BenchOptions& opts) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.rma_enabled = true;
  opts.apply(&cfg, "rma_sweep");
  cfg.telemetry = true;
  // Fault-free LAN puts complete in tens of microseconds; the objective
  // must hold every window.
  obs::SloSpec slo;
  slo.name = "rma_p99_under_10ms";
  slo.kind = obs::SloKind::latency;
  slo.sketch = "rma/op";
  slo.threshold = Duration::milliseconds(10);
  slo.target = 0.99;
  cfg.slos.push_back(slo);

  Cluster c(cfg);
  c.init_ncs_hsm();
  const Bytes msg = patterned(payload, 3);
  const Duration elapsed = c.run([&](int rank) {
    rma::Engine& rma = c.rma(rank);
    rma.create_window(0, 4096);
    c.node(rank).barrier();
    if (rank == 0) {
      for (int i = 0; i < count; ++i)
        rma.put(1, 0, (static_cast<std::uint64_t>(i) % 8) * 512, msg);
      rma.fence();
    }
    c.node(rank).barrier();
  });

  TelemetryRun r;
  r.puts_per_sec = count / elapsed.sec();
  r.t = fold_telemetry(c);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  BenchReport report("rma_sweep");
  bool all_ok = true;

  // --- latency ---
  const std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{16, 256, 1024}
           : std::vector<std::size_t>{16, 64, 256, 1024, 4096, 16384};
  const int iters = fast ? 8 : 16;
  std::printf("one-way latency, ATM LAN (HSM) P=2, %d ping-pongs:\n", iters);
  std::printf("  %7s %12s %12s %12s %12s\n", "bytes", "put us", "send/recv us",
              "eager us", "get-rt us");
  bool put_small_ok = true;
  for (const std::size_t payload : sizes) {
    const double put_us = pingpong_put_us(payload, iters);
    const double sr_us = pingpong_sendrecv_us(payload, iters, mps::ProtoMode::off);
    const double eager_us = pingpong_sendrecv_us(payload, iters, mps::ProtoMode::eager);
    const double get_us = pingpong_get_us(payload, iters) * 2.0;  // full RT
    if (payload <= 1024 && put_us >= sr_us) put_small_ok = false;
    std::printf("  %7zu %12.1f %12.1f %12.1f %12.1f\n", payload, put_us, sr_us,
                eager_us, get_us);
    report.row();
    report.set("experiment", std::string("latency"));
    report.set("payload_bytes", static_cast<std::int64_t>(payload));
    report.set("put_us", put_us);
    report.set("sendrecv_us", sr_us);
    report.set("eager_us", eager_us);
    report.set("get_rt_us", get_us);
  }
  std::printf("put beats send/recv at <= 1 KiB: %s\n", put_small_ok ? "yes" : "NO");
  all_ok = all_ok && put_small_ok;

  // --- rate ---
  const int count = fast ? 200 : 800;
  std::printf("\nstreaming rate, 64 B messages, P=2 LAN (%d messages):\n", count);
  const double puts_rate = stream_puts_per_sec(64, count);
  const double sends_rate = stream_sends_per_sec(64, count, mps::ProtoMode::off);
  const double eager_rate = stream_sends_per_sec(64, count, mps::ProtoMode::eager);
  std::printf("  put %9.0f msg/s   send %9.0f msg/s   eager-send %9.0f msg/s\n",
              puts_rate, sends_rate, eager_rate);
  report.row();
  report.set("experiment", std::string("rate"));
  report.set("payload_bytes", std::int64_t{64});
  report.set("puts_per_sec", puts_rate);
  report.set("sends_per_sec", sends_rate);
  report.set("eager_sends_per_sec", eager_rate);

  // --- counter ---
  const std::vector<int> counter_procs = fast ? std::vector<int>{8} : std::vector<int>{8, 64};
  bool counter_exact = true;
  std::printf("\ndistributed counter, multi-site WAN chain, spoke PVCs only:\n");
  for (const int p : counter_procs) {
    const int it = fast ? 16 : 32;
    const CounterResult r = run_counter(p, it);
    counter_exact = counter_exact && r.exact;
    std::printf("  P=%-3d iters=%-3d sum %s  %10.0f atomics/s (simulated), %.1f ms\n", p,
                it, r.exact ? "exact" : "WRONG", r.ops_per_sec,
                r.sim_elapsed_sec * 1e3);
    report.row();
    report.set("experiment", std::string("counter"));
    report.set("procs", p);
    report.set("iters", it);
    report.set("exact", r.exact);
    report.set("sim_elapsed_sec", r.sim_elapsed_sec);
    report.set("atomics_per_sec", r.ops_per_sec);
  }
  all_ok = all_ok && counter_exact;

  // --- chaos ---
  const int chaos_iters = fast ? 12 : 24;
  const ChaosResult a = run_chaos(chaos_iters);
  const ChaosResult b = run_chaos(chaos_iters);
  const bool chaos_identical = a.digest == b.digest && a.retransmits == b.retransmits;
  const bool chaos_ok = a.exact && b.exact && a.retransmits > 0 && chaos_identical;
  std::printf("\nchaos (bursty SONET, retransmit): sum %s, %llu retransmits, "
              "repeat digest %s\n",
              a.exact && b.exact ? "exact" : "WRONG",
              static_cast<unsigned long long>(a.retransmits),
              chaos_identical ? "bit-identical" : "DIVERGED");
  all_ok = all_ok && chaos_ok;

  // --- telemetry ---
  bool telemetry_ok = true;
  if (opts.telemetry) {
    const int t_count = fast ? 200 : 800;
    const TelemetryRun tr = run_telemetry(64, t_count, opts);
    telemetry_ok = tr.t.ticks > 0 && tr.t.slo_compliance == 1.0 &&
                   tr.t.slo_hard_breaches == 0;
    std::printf("\ntelemetry (64 B put stream, live plane on): %llu ticks, "
                "rma p99 %.1f us, p99.9 %.1f us, SLO compliance %.3f: %s\n",
                static_cast<unsigned long long>(tr.t.ticks), tr.t.rma_p99_us,
                tr.t.rma_p999_us, tr.t.slo_compliance,
                telemetry_ok ? "ok" : "FAILED");
    report.row();
    report.set("experiment", std::string("telemetry"));
    report.set("payload_bytes", std::int64_t{64});
    report.set("msgs", t_count);
    report.set("puts_per_sec", tr.puts_per_sec);
    report.set("telemetry_ticks", static_cast<std::int64_t>(tr.t.ticks));
    report.set("rma_p99_us", tr.t.rma_p99_us);
    report.set("rma_p999_us", tr.t.rma_p999_us);
    report.set("slo_compliance", tr.t.slo_compliance);
    report.set("slo_max_burn", tr.t.slo_max_burn);
    all_ok = all_ok && telemetry_ok;
  }

  report.summary("put_small_latency_ok", put_small_ok);
  report.summary("counter_exact", counter_exact);
  report.summary("chaos_retransmits", static_cast<std::int64_t>(a.retransmits));
  report.summary("chaos_identical", chaos_identical);
  if (opts.telemetry) report.summary("telemetry_ok", telemetry_ok);
  report.summary("all_ok", all_ok);

  std::printf("\nclaims: one-sided beats send/recv small-message latency, counter sums "
              "exact, chaos bit-identical: %s\n",
              all_ok ? "hold" : "FAILED");
  if (opts.json) report.emit(opts.json_path);
  return all_ok ? 0 : 1;
}
