// Reproduces Table 3: "Execution times of FFT in seconds" — DIF FFT with
// M = 512 sample points, 8 sample sets; p4 vs NCS_MTS/p4 (two threads per
// node process) on both testbeds.
#include <cstdio>

#include "cluster/drivers.hpp"
#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/table.hpp"

int main(int argc, char** argv) {
  using namespace ncs::cluster;
  const BenchOptions opts = parse_bench_options(argc, argv);

  std::vector<TableRow> rows;
  bool all_correct = true;

  for (const int nodes : {1, 2, 4, 8}) {
    TableRow row;
    row.nodes = nodes;

    const AppResult p4_eth = run_fft_p4(sun_ethernet(0), nodes);
    const AppResult ncs_eth = run_fft_ncs(sun_ethernet(0), nodes);
    row.p4_ethernet = p4_eth.elapsed;
    row.ncs_ethernet = ncs_eth.elapsed;
    all_correct = all_correct && p4_eth.correct && ncs_eth.correct;

    if (nodes <= 4) {
      const AppResult p4_atm = run_fft_p4(sun_atm_lan(0), nodes);
      const AppResult ncs_atm = run_fft_ncs(sun_atm_lan(0), nodes);
      row.p4_atm = p4_atm.elapsed;
      row.ncs_atm = ncs_atm.elapsed;
      all_correct = all_correct && p4_atm.correct && ncs_atm.correct;
    } else {
      row.has_atm = false;
    }
    rows.push_back(row);
  }

  std::fputs(format_table("Table 3: Execution times of FFT (seconds), M=512, 8 sample sets",
                          "SUN/Ethernet", "NYNET (ATM) testbed", rows)
                 .c_str(),
             stdout);
  std::printf("\nresult verification (vs whole-array FFT + reference DFT): %s\n",
              all_correct ? "all runs correct" : "FAILED");

  if (opts.prof) {
    ClusterConfig cfg = sun_atm_lan(0);
    opts.apply(&cfg, "table3_fft");
    const AppResult profiled = run_fft_ncs(std::move(cfg), 4);
    all_correct = all_correct && profiled.correct;
    std::printf("\n%s", profiled.bottleneck.c_str());
  }

  if (opts.json) emit_json(table_json("table3_fft", rows, all_correct), opts.json_path);
  return all_correct ? 0 : 1;
}
