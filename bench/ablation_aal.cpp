// Ablation: AAL5 vs AAL3/4 (both appear in the paper's protocol stacks,
// Figs 11/12). AAL3/4 spends 4 of each cell's 48 payload bytes on per-cell
// framing plus a CPCS envelope; AAL5 carries 48 and pays one 8-byte
// trailer per PDU — the efficiency argument that made AAL5 the HPDC
// choice.
#include <cstdio>

#include "atm/aal34.hpp"
#include "atm/aal5.hpp"
#include "cluster/bench_json.hpp"
#include "cluster/drivers.hpp"

using namespace ncs;
using namespace ncs::cluster;

int main(int argc, char** argv) {
  BenchReport report("ablation_aal");
  std::printf("Ablation: AAL5 vs AAL3/4\n\n");
  std::printf("wire efficiency (payload bytes / wire bytes):\n");
  std::printf("%10s %10s %10s\n", "payload", "AAL5", "AAL3/4");
  for (const std::size_t n : {64u, 512u, 4096u, 9180u}) {
    const double e5 = static_cast<double>(n) /
                      (static_cast<double>(atm::aal5::cell_count(n)) * atm::Cell::kSize);
    const double e34 = static_cast<double>(n) /
                       (static_cast<double>(atm::aal34::cell_count(n)) * atm::Cell::kSize);
    std::printf("%10zu %9.1f%% %9.1f%%\n", n, e5 * 100, e34 * 100);
    report.row();
    report.set("payload_bytes", static_cast<std::int64_t>(n));
    report.set("aal5_efficiency", e5);
    report.set("aal34_efficiency", e34);
  }

  std::printf("\nend-to-end: 4-node JPEG pipeline on the ATM LAN (NCS/HSM):\n");
  ClusterConfig cfg5 = sun_atm_lan(0);
  ClusterConfig cfg34 = sun_atm_lan(0);
  cfg34.nic.adaptation = atm::Adaptation::aal34;
  const AppResult r5 = run_jpeg_ncs(cfg5, 4, NcsTier::hsm_atm);
  const AppResult r34 = run_jpeg_ncs(cfg34, 4, NcsTier::hsm_atm);
  std::printf("  AAL5:   %.3f s %s\n", r5.elapsed.sec(), r5.correct ? "" : "WRONG");
  std::printf("  AAL3/4: %.3f s %s\n", r34.elapsed.sec(), r34.correct ? "" : "WRONG");
  std::printf("  AAL3/4 penalty: %.2f %%\n",
              (r34.elapsed - r5.elapsed).sec() / r5.elapsed.sec() * 100.0);
  report.summary("aal5_jpeg_sec", r5.elapsed.sec());
  report.summary("aal34_jpeg_sec", r34.elapsed.sec());
  report.summary("all_correct", r5.correct && r34.correct);
  if (std::string json_path; parse_json_flag(argc, argv, &json_path)) report.emit(json_path);
  return r5.correct && r34.correct && r34.elapsed >= r5.elapsed ? 0 : 1;
}
