// Reproduces Figure 16: "Computation and Communication pattern with two
// threads/processor" — the per-processor activity timelines of the JPEG
// pipeline, single-threaded (pure message passing) vs two threads per
// node, with busy-fraction summaries.
#include <cstdio>

#include "apps/image.hpp"
#include "apps/jpeg/codec.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/cluster.hpp"
#include "cluster/compute.hpp"

using namespace ncs;
using namespace ncs::cluster;
using apps::Image;
using apps::make_test_image;
using apps::pack_image;
using apps::unpack_image;

namespace {

constexpr int kNodes = 4;  // 2 compressors -> 2 decompressors

Bytes with_offset(int row, BytesView payload) {
  Bytes out(4 + payload.size());
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(row));
  w.bytes(payload);
  return out;
}

std::pair<int, BytesView> split_offset(BytesView data) {
  ByteReader r(data);
  const int row = static_cast<int>(r.u32());
  return {row, r.bytes(r.remaining())};
}

Duration run_case(int tpn, std::string* out, const std::string& trace_path) {
  const Calibration& cal = calibration();
  const int compressors = kNodes / 2;
  ClusterConfig cfg = sun_ethernet(0);
  cfg.n_procs = kNodes + 1;
  Cluster cluster(cfg);
  cluster.enable_timeline();
  if (!trace_path.empty()) cluster.enable_trace();
  cluster.init_ncs_nsm();

  const Image original = make_test_image(cal.jpeg_width, cal.jpeg_height, 7);
  const int half_rows = cal.jpeg_height / (compressors * tpn);

  const Duration elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);
    if (rank == 0) {
      std::vector<int> tids;
      for (int t = 0; t < tpn; ++t) {
        tids.push_back(node.t_create([&, t] {
          for (int i = 1; i <= compressors; ++i) {
            const int slice = (i - 1) * tpn + t;
            const int row = slice * half_rows;
            node.send(t, t, i, with_offset(row, pack_image(original.strip(row, row + half_rows))));
          }
          if (t == 0)
            for (int k = 0; k < compressors * tpn; ++k)
              (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
        }, mts::kDefaultPriority, "t" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    } else if (rank <= compressors) {
      std::vector<int> tids;
      for (int t = 0; t < tpn; ++t) {
        tids.push_back(node.t_create([&, t, rank] {
          const Bytes data = node.recv(t, 0, t);
          const auto [row, payload] = split_offset(data);
          const Image strip = unpack_image(payload);
          charge_compute(node.host(), static_cast<double>(strip.pixels.size()) *
                                          cal.jpeg_compress_cycles_per_pixel);
          node.send(t, t, rank + compressors, with_offset(row, apps::jpeg::compress(strip)));
        }, mts::kDefaultPriority, "t" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    } else {
      std::vector<int> tids;
      for (int t = 0; t < tpn; ++t) {
        tids.push_back(node.t_create([&, t, rank] {
          const Bytes data = node.recv(t, rank - compressors, t);
          const auto [row, payload] = split_offset(data);
          const Image strip = apps::jpeg::decompress(payload);
          charge_compute(node.host(), static_cast<double>(strip.pixels.size()) *
                                          cal.jpeg_decompress_cycles_per_pixel);
          node.send(t, 0, 0, with_offset(row, pack_image(strip)));
        }, mts::kDefaultPriority, "t" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    }
  });

  // Render the application threads + per-track busy summaries.
  sim::Timeline& tl = cluster.timeline();
  std::string text;
  const std::string full = tl.render_ascii(TimePoint::origin(), TimePoint::origin() + elapsed, 90);
  std::size_t pos = 0;
  while (pos < full.size()) {
    const std::size_t eol = full.find('\n', pos);
    const std::string line = full.substr(pos, eol - pos);
    if (line.find("/t") != std::string::npos || line.find('[') != std::string::npos)
      text += line + "\n";
    pos = eol + 1;
  }
  text += "\n   track           compute  communicate   idle\n";
  for (int k = 0; k < tl.track_count(); ++k) {
    const std::string& name = tl.track_name(k);
    if (name.find("/t") == std::string::npos) continue;
    const auto s = tl.summarize(k);
    char buf[128];
    std::snprintf(buf, sizeof buf, "   %-14s  %6.1f%%     %6.1f%%  %6.1f%%\n", name.c_str(),
                  s.fraction(sim::Activity::compute) * 100,
                  s.fraction(sim::Activity::communicate) * 100,
                  s.fraction(sim::Activity::idle) * 100);
    text += buf;
  }
  *out = text;
  if (!trace_path.empty()) {
    if (cluster.write_trace(trace_path)) {
      std::printf("wrote Chrome/Perfetto trace (%d thread%s/node) to %s\n", tpn,
                  tpn == 1 ? "" : "s", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write trace to %s\n", trace_path.c_str());
    }
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace[=PATH] writes the two-threads-per-node run as a Chrome-trace
  // JSON file (load in Perfetto / chrome://tracing).
  const BenchOptions opts = parse_bench_options(argc, argv);
  std::string trace_path;
  if (opts.trace)
    trace_path = opts.trace_path.empty() ? "fig16_timeline_trace.json" : opts.trace_path;

  std::printf("Figure 16: computation/communication pattern of the JPEG pipeline,\n");
  std::printf("%d nodes on Ethernet, single-threaded vs two threads per processor.\n\n", kNodes);

  std::string single, threaded;
  const Duration t1 = run_case(1, &single, "");
  const Duration t2 = run_case(2, &threaded, trace_path);

  std::printf("--- single-threaded (pure message passing) --- total %.3f s\n%s\n", t1.sec(),
              single.c_str());
  std::printf("--- two threads per processor --- total %.3f s\n%s\n", t2.sec(), threaded.c_str());
  std::printf("threading reduces the makespan by %.1f %%\n", (t1 - t2).sec() / t1.sec() * 100.0);
  return t2 < t1 ? 0 : 1;
}
