// Chaos/soak harness: scripted fault scenarios against the three paper
// applications on the lossy NYNET WAN (NCS/HSM tier).
//
// Per application, four runs:
//   baseline   EC=retransmit, fault-free — the reference result digest.
//   chaos      EC=retransmit under a WAN link flap + Gilbert-Elliott burst
//              loss + switch port failure + host pause + cell corruption.
//              Must finish with a bit-identical result digest (error
//              control recovers every loss) and retransmits > 0.
//   repeat     the chaos run again — byte-identical makespan and digest
//              (determinism: faults are ordinary simulation events).
//   blackout   EC=none under a hard 30 s backbone outage. Messages sent
//              meanwhile are gone for good; the run must *terminate* with
//              typed NCS exceptions (recv timeouts), never hang.
//
// `--json[=path]` emits ncs-bench-v1; `--trace` additionally writes
// chaos_<app>_trace.json Chrome traces with fault instants on the "fault"
// track next to the traffic they perturb.
//
// `--telemetry` runs chaos and blackout with the live plane on: the chaos
// rows gain windowed e2e p99 / p99.9 and must finish with zero hard SLO
// breaches; the blackout arms the flight recorder, and the run must
// auto-dump exactly one ncs-flight-recorder-v1 snapshot whose fabric ring
// still holds the "link-down sonet" instant that caused the timeouts
// (both gate the exit code).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/drivers.hpp"
#include "common/assert.hpp"
#include "fault/plan.hpp"

using namespace ncs;
using namespace ncs::cluster;

namespace {

constexpr const char* kChaosPlan = R"(
# WAN link flap, burst loss, switch port failure, host pause, cell rot —
# all inside the apps' first second of traffic.
seed 51966
at 150ms link sonet down for 40ms
at 300ms link sonet burst for 300ms p_gb=0.02 p_bg=0.4 loss_good=0 loss_bad=0.7
at 500ms switch wan-switch1 port 0 down for 30ms
at 650ms host p1 pause for 20ms
at 700ms nic nic1 corrupt for 50ms p=0.002
# A long mid-run burst overlapping the jpeg pipeline and fft exchange
# phases, and a late hard flap across matmul's result return (~5.3s).
at 800ms link sonet burst for 2s p_gb=0.05 p_bg=0.3 loss_good=0 loss_bad=0.8
at 5250ms link sonet down for 150ms
)";

constexpr const char* kBlackoutPlan = R"(
# Hard backbone outage; with EC=none every message sent meanwhile is lost
# for good and receivers must time out.
at 200ms link sonet down for 30s
)";

enum class App { matmul, jpeg, fft };
constexpr App kApps[] = {App::matmul, App::jpeg, App::fft};

const char* app_name(App a) {
  switch (a) {
    case App::matmul: return "matmul";
    case App::jpeg: return "jpeg";
    case App::fft: return "fft";
  }
  return "?";
}

AppResult run_app(App app, ClusterConfig cfg) {
  constexpr int kNodes = 4;
  switch (app) {
    case App::matmul: return run_matmul_ncs(std::move(cfg), kNodes, NcsTier::hsm_atm);
    case App::jpeg: return run_jpeg_ncs(std::move(cfg), kNodes, NcsTier::hsm_atm);
    case App::fft: return run_fft_ncs(std::move(cfg), kNodes, NcsTier::hsm_atm);
  }
  NCS_UNREACHABLE("bad app");
}

fault::FaultPlan parse_plan(const char* text) {
  auto plan = fault::FaultPlan::parse(text);
  NCS_ASSERT_MSG(plan.is_ok(), "chaos_soak plan failed to parse");
  return plan.value();
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("chaos_soak");
  const BenchOptions opts = parse_bench_options(argc, argv);

  const fault::FaultPlan chaos = parse_plan(kChaosPlan);
  const fault::FaultPlan blackout = parse_plan(kBlackoutPlan);

  std::printf("Chaos/soak: scripted WAN faults vs the paper apps (NCS/HSM)\n\n");
  std::printf("%8s %10s %12s %12s %8s %6s %6s\n", "app", "scenario", "time", "digest",
              "retx", "exc", "ok");

  bool all_ok = true;
  bool telemetry_all_ok = true;
  bool recorder_all_ok = true;
  for (const App app : kApps) {
    ClusterConfig recover = nynet_wan(0);
    recover.ncs.error.kind = mps::ErrorControlKind::retransmit;
    // Above the fault-free WAN round trip (large transfers serialize for
    // tens of ms on the DS-3 hop), so retransmits mean real loss.
    recover.ncs.error.rto = Duration::milliseconds(200);

    ClusterConfig faulty = recover;
    faulty.faults = chaos;
    if (opts.trace || opts.prof)
      opts.apply(&faulty, std::string("chaos_") + app_name(app));

    ClusterConfig doomed = nynet_wan(0);  // EC=none: loss is unrecoverable
    doomed.ncs.recv_timeout = Duration::seconds(2);
    doomed.faults = blackout;
    const std::string black_box =
        std::string("chaos_") + app_name(app) + "_blackout_recorder.json";
    if (opts.telemetry) {
      doomed.telemetry = true;
      doomed.recorder_path = black_box;
    }

    const AppResult base = run_app(app, recover);
    const AppResult under = run_app(app, faulty);
    faulty.trace_path.clear();
    faulty.profile = false;
    faulty.report_path.clear();
    // The repeat keeps telemetry (its sampler events are part of the event
    // stream being compared) but must not clobber the first run's dump.
    faulty.recorder_path.clear();
    const AppResult again = run_app(app, faulty);
    const AppResult dead = run_app(app, doomed);

    const bool recovered = base.correct && under.correct &&
                           under.result_hash == base.result_hash && under.retransmits > 0;
    const bool deterministic =
        again.elapsed == under.elapsed && again.result_hash == under.result_hash &&
        again.retransmits == under.retransmits;
    const bool surfaced = dead.exceptions > 0 && !dead.correct;

    bool telemetry_ok = true;
    bool recorder_ok = true;
    if (opts.telemetry) {
      // Chaos with retransmit EC recovers every loss: the live plane must
      // have ticked, measured real tails, and graded no hard breach.
      telemetry_ok = under.telemetry && under.telemetry_ticks > 0 &&
                     under.e2e_p999_us > 0.0 && under.slo_hard_breaches == 0;
      // The blackout's first failure must have dumped the black box —
      // exactly once — and the fabric ring must still hold the outage.
      std::string dump;
      if (std::ifstream in(black_box); in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        dump = ss.str();
      }
      const bool instant_captured = dump.find("link-down sonet") != std::string::npos;
      recorder_ok = dead.telemetry && dead.recorder_triggers > 0 &&
                    dead.recorder_dumps == 1 &&
                    dump.find("ncs-flight-recorder-v1") != std::string::npos &&
                    instant_captured;
      std::printf("%8s  black box: %llu trigger(s), %llu dump(s), fault instant %s\n",
                  app_name(app), static_cast<unsigned long long>(dead.recorder_triggers),
                  static_cast<unsigned long long>(dead.recorder_dumps),
                  instant_captured ? "captured" : "MISSING");
    }
    telemetry_all_ok = telemetry_all_ok && telemetry_ok;
    recorder_all_ok = recorder_all_ok && recorder_ok;
    all_ok = all_ok && recovered && deterministic && surfaced && telemetry_ok && recorder_ok;
    if (!under.bottleneck.empty()) std::printf("%s", under.bottleneck.c_str());

    const struct {
      const char* scenario;
      const AppResult& r;
      bool ok;
    } lines[] = {{"baseline", base, base.correct},
                 {"chaos", under, recovered},
                 {"repeat", again, deterministic},
                 {"blackout", dead, surfaced}};
    for (const auto& l : lines) {
      std::printf("%8s %10s %10.3f s %012llx %8llu %6llu %6s\n", app_name(app), l.scenario,
                  l.r.elapsed.sec(), static_cast<unsigned long long>(l.r.result_hash),
                  static_cast<unsigned long long>(l.r.retransmits),
                  static_cast<unsigned long long>(l.r.exceptions), l.ok ? "yes" : "NO");
      report.row();
      report.set("app", std::string(app_name(app)));
      report.set("scenario", std::string(l.scenario));
      report.set("elapsed_sec", l.r.elapsed.sec());
      report.set("correct", l.r.correct);
      report.set("result_hash", l.r.result_hash);
      report.set("retransmits", l.r.retransmits);
      report.set("exceptions", l.r.exceptions);
      report.set("ok", l.ok);
      if (l.r.telemetry) {
        report.set("telemetry_ticks", static_cast<std::int64_t>(l.r.telemetry_ticks));
        report.set("e2e_p99_us", l.r.e2e_p99_us);
        report.set("e2e_p999_us", l.r.e2e_p999_us);
        report.set("slo_min_compliance", l.r.slo_min_compliance);
        report.set("slo_max_burn", l.r.slo_max_burn);
        report.set("recorder_triggers", l.r.recorder_triggers);
        report.set("recorder_dumps", l.r.recorder_dumps);
      }
    }
  }

  std::printf("\n%s\n", all_ok ? "chaos soak: all scenarios behaved"
                               : "chaos soak: FAILURES above");
  if (opts.telemetry) {
    report.summary("telemetry_ok", telemetry_all_ok);
    report.summary("recorder_ok", recorder_all_ok);
  }
  report.summary("all_ok", all_ok);
  if (opts.json) report.emit(opts.json_path);
  return all_ok ? 0 : 1;
}
