// Point-to-point protocol sweep: the eager/rendezvous engine (mps/proto)
// against the legacy one-submit-per-message path.
//
// Three experiments:
//
//   rate     small-message throughput race at P=8 on the NYNET WAN with
//            window flow control and several sender threads per node —
//            the configuration where per-frame cost and the ack round
//            trip dominate, i.e. exactly what eager coalescing amortises.
//            Claim (gates the exit code): eager moves >= 2x the messages
//            per second of the legacy path at <= 256 B payloads.
//   sweep    payload size x protocol mode on the ATM LAN (HSM): per-
//            message latency for off/eager/rendezvous/adaptive; '*' marks
//            the path the adaptive crossover would take on its own.
//            Claim: rendezvous beats eager beyond the crossover.
//   chaos    adaptive protocol over a lossy WAN with retransmit error
//            control: every payload (coalesced eager records and
//            reassembled rendezvous transfers alike) must arrive with a
//            bit-identical CRC32, in per-source FIFO order.
//
//   --fast   CI-sized run (fewer messages, three sweep sizes)
//   --json   ncs-bench-v1 rows: experiment/mode/payload_bytes/...,
//            summary eager_small_msg_speedup / rndv_large_speedup /
//            all_correct
//   --prof   profiled eager rate run: bottleneck table with the proto
//            section (batch occupancy, RTS->CTS delay)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "cluster/report.hpp"
#include "common/crc.hpp"

namespace {

using namespace ncs;
using namespace ncs::cluster;
using mps::ProtoMode;

Bytes patterned(std::size_t n, std::uint32_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::byte>((i * 131 + salt * 29) & 0xFF);
  return b;
}

// --- rate: P=8 WAN ring, several sender threads per node ---

struct RateResult {
  double msgs_per_sec = 0.0;
  std::uint64_t frames = 0;  // transport frames for the measured messages
  bool correct = true;
};

RateResult run_rate(ProtoMode mode, std::size_t payload, int senders, int per_sender,
                    const BenchOptions* prof_opts, BenchTelemetry* telem = nullptr) {
  constexpr int kProcs = 8;
  ClusterConfig cfg = nynet_wan(kProcs);
  cfg.ncs.flow = {.kind = mps::FlowControlKind::window, .window = 8};
  cfg.ncs.proto.mode = mode;
  if (prof_opts != nullptr) prof_opts->apply(&cfg, "proto_sweep");
  if (telem != nullptr) {
    cfg.telemetry = true;
    // Fault-free WAN traffic: the generous objective must hold every window.
    obs::SloSpec slo;
    slo.name = "e2e_p99_under_200ms";
    slo.kind = obs::SloKind::latency;
    slo.sketch = "mps/e2e";
    slo.threshold = Duration::milliseconds(200);
    slo.target = 0.99;
    cfg.slos.push_back(slo);
  }
  Cluster c(cfg);
  c.init_ncs_hsm();

  const int expect = senders * per_sender;
  RateResult r;
  const Duration elapsed = c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int dst = (rank + 1) % kProcs;
    std::vector<int> tids;
    for (int s = 0; s < senders; ++s) {
      tids.push_back(node.t_create([&node, s, dst, per_sender, payload] {
        for (int i = 0; i < per_sender; ++i)
          node.send(s, 0, dst, patterned(payload, static_cast<std::uint32_t>(i)));
      }));
    }
    tids.push_back(node.t_create([&node, expect, payload, &r] {
      for (int i = 0; i < expect; ++i)
        if (node.recv(mps::kAnyThread, mps::kAnyProcess, 0).size() != payload)
          r.correct = false;
    }));
    for (const int t : tids) node.host().join(node.user_thread(t));
  });

  r.msgs_per_sec = static_cast<double>(kProcs) * expect / elapsed.sec();
  for (int p = 0; p < kProcs; ++p) {
    const mps::ProtoEngine::Stats& st = c.node(p).proto().stats();
    r.frames += mode == ProtoMode::off
                    ? static_cast<std::uint64_t>(expect)  // one submit per message
                    : st.eager_frames + st.rndv_chunks;
  }
  if (telem != nullptr) *telem = fold_telemetry(c);
  if (prof_opts != nullptr) std::printf("\n%s", bottleneck_report(c).c_str());
  return r;
}

// --- sweep: payload size x mode, P=2 ATM LAN ---

struct SweepResult {
  double per_msg_us = 0.0;
  bool correct = true;
  /// What the sender-side engine actually did (for the adaptive '*').
  std::uint64_t eager_msgs = 0;
  std::uint64_t rndv_transfers = 0;
};

SweepResult run_sweep(ProtoMode mode, std::size_t payload, int iters) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.ncs.proto.mode = mode;
  Cluster c(cfg);
  c.init_ncs_hsm();

  SweepResult r;
  const Duration elapsed = c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&node, rank, payload, iters, &r] {
      if (rank == 0) {
        for (int i = 0; i < iters; ++i)
          node.send(0, 0, 1, patterned(payload, static_cast<std::uint32_t>(i)));
      } else {
        for (int i = 0; i < iters; ++i) {
          const Bytes got = node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
          if (crc32_ieee(got) !=
              crc32_ieee(patterned(payload, static_cast<std::uint32_t>(i))))
            r.correct = false;
        }
      }
    });
    node.host().join(node.user_thread(t));
  });
  r.per_msg_us = elapsed.sec() * 1e6 / iters;
  r.eager_msgs = c.node(0).proto().stats().eager_msgs;
  r.rndv_transfers = c.node(0).proto().stats().rndv_transfers;
  return r;
}

// --- chaos: lossy WAN, adaptive protocol, CRC32 per payload ---

bool run_chaos(int msgs) {
  constexpr int kProcs = 4;
  ClusterConfig cfg = nynet_wan(kProcs);
  cfg.wan_backbone.loss_probability = 0.08;
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit,
                   .rto = Duration::milliseconds(15),
                   .max_retries = 60};
  cfg.ncs.proto.mode = ProtoMode::adaptive;
  cfg.ncs.proto.eager_max_bytes = 2048;
  Cluster c(cfg);
  c.init_ncs_hsm();

  // Ring traffic, sizes straddling the pinned crossover; the i-th payload
  // from rank r is patterned(n, r*1000+i), so the receiver can recompute
  // the expected digest without any side channel.
  const auto size_of = [](int i) -> std::size_t {
    return i % 3 == 2 ? 24 * 1024 : (i % 3 == 1 ? 700 : 128);
  };
  bool ok = true;
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int dst = (rank + 1) % kProcs;
    const int src = (rank + kProcs - 1) % kProcs;
    std::vector<int> tids;
    tids.push_back(node.t_create([&node, rank, dst, msgs, size_of] {
      for (int i = 0; i < msgs; ++i)
        node.send(0, 0, dst,
                  patterned(size_of(i), static_cast<std::uint32_t>(rank * 1000 + i)));
    }));
    tids.push_back(node.t_create([&node, src, msgs, size_of, &ok] {
      for (int i = 0; i < msgs; ++i) {
        const Bytes got = node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
        const Bytes want =
            patterned(size_of(i), static_cast<std::uint32_t>(src * 1000 + i));
        if (got.size() != want.size() || crc32_ieee(got) != crc32_ieee(want))
          ok = false;  // order, size, or content diverged
      }
    }));
    for (const int t : tids) node.host().join(node.user_thread(t));
  });
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  BenchReport report("proto_sweep");
  bool all_correct = true;

  // --- rate race ---
  // Enough messages per sender that the window-limited steady state (where
  // coalescing pays) dominates the startup and pipe-drain phases.
  const int senders = 8;
  const int per_sender = fast ? 25 : 60;
  std::printf("small-message rate, NYNET WAN P=8, window=8, %d sender threads/node:\n",
              senders);
  double eager_speedup = 0.0;
  for (const std::size_t payload : {std::size_t{64}, std::size_t{256}}) {
    const RateResult off = run_rate(ProtoMode::off, payload, senders, per_sender, nullptr);
    const RateResult eager =
        run_rate(ProtoMode::eager, payload, senders, per_sender, nullptr);
    all_correct = all_correct && off.correct && eager.correct;
    const double speedup = eager.msgs_per_sec / off.msgs_per_sec;
    if (payload <= 256) eager_speedup = std::max(eager_speedup, speedup);
    std::printf("  %4zu B: off %9.0f msg/s (%5llu frames)  eager %9.0f msg/s "
                "(%5llu frames)  %.2fx\n",
                payload, off.msgs_per_sec, static_cast<unsigned long long>(off.frames),
                eager.msgs_per_sec, static_cast<unsigned long long>(eager.frames),
                speedup);
    for (const auto* r : {&off, &eager}) {
      report.row();
      report.set("experiment", std::string("rate"));
      report.set("mode", std::string(r == &off ? "off" : "eager"));
      report.set("payload_bytes", static_cast<std::int64_t>(payload));
      report.set("msgs_per_sec", r->msgs_per_sec);
      report.set("frames", r->frames);
    }
  }

  // --- size sweep ---
  const std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{256, 8192, 262144}
           : std::vector<std::size_t>{64, 256, 1024, 4096, 16384, 65536, 262144};
  const int iters = fast ? 4 : 8;
  const struct {
    ProtoMode mode;
    const char* name;
  } modes[] = {{ProtoMode::off, "off"},
               {ProtoMode::eager, "eager"},
               {ProtoMode::rendezvous, "rendezvous"},
               {ProtoMode::adaptive, "adaptive"}};

  std::printf("\nper-message latency, ATM LAN (HSM) P=2; '*' = the path the adaptive\n"
              "mode mostly took at that size (its crossover starts at the cost-hint\n"
              "estimate and converges via measured RTS->CTS delays)\n");
  double eager_big_us = 0.0, rndv_big_us = 0.0;
  for (const std::size_t payload : sizes) {
    std::printf("  %7zu B:", payload);
    SweepResult results[4];
    for (int mi = 0; mi < 4; ++mi) {
      results[mi] = run_sweep(modes[mi].mode, payload, iters);
      all_correct = all_correct && results[mi].correct;
    }
    // The adaptive run reports which path it actually used message by
    // message; the '*' goes to the majority path.
    const SweepResult& ad = results[3];
    const bool picked_rndv = ad.rndv_transfers > ad.eager_msgs;
    for (int mi = 0; mi < 4; ++mi) {
      const SweepResult& r = results[mi];
      const bool star = (modes[mi].mode == ProtoMode::eager && !picked_rndv) ||
                        (modes[mi].mode == ProtoMode::rendezvous && picked_rndv);
      if (payload == sizes.back()) {
        if (modes[mi].mode == ProtoMode::eager) eager_big_us = r.per_msg_us;
        if (modes[mi].mode == ProtoMode::rendezvous) rndv_big_us = r.per_msg_us;
      }
      report.row();
      report.set("experiment", std::string("sweep"));
      report.set("mode", std::string(modes[mi].name));
      report.set("payload_bytes", static_cast<std::int64_t>(payload));
      report.set("per_msg_us", r.per_msg_us);
      report.set("adaptive_pick", star);
      std::printf("  %-10s %9.1f us%s", modes[mi].name, r.per_msg_us, star ? "*" : " ");
    }
    std::printf("\n");
  }
  const double rndv_speedup = eager_big_us / rndv_big_us;
  std::printf("at %zu B: rendezvous %.2fx vs eager\n", sizes.back(), rndv_speedup);

  // --- chaos digests ---
  const bool chaos_ok = run_chaos(fast ? 12 : 30);
  std::printf("\nchaos (8%% WAN loss, retransmit, adaptive): %s\n",
              chaos_ok ? "all payload digests bit-identical"
                       : "DIGEST MISMATCH OR REORDER");
  all_correct = all_correct && chaos_ok;

  report.summary("eager_small_msg_speedup", eager_speedup);
  report.summary("rndv_large_speedup", rndv_speedup);
  report.summary("chaos_digests_ok", chaos_ok);

  const bool claims_hold = eager_speedup >= 2.0 && rndv_speedup > 1.0;
  std::printf("claims: eager small-message speedup %.2fx (need >= 2), "
              "rendezvous large-payload speedup %.2fx (need > 1): %s\n",
              eager_speedup, rndv_speedup, claims_hold ? "hold" : "FAILED");
  report.summary("all_correct", all_correct && claims_hold);

  if (opts.telemetry) {
    // Telemetry stage: the eager and legacy rate runs again with the live
    // plane on — windowed tail series in the report, counter tracks in the
    // trace, and latency-class row fields for the tail-latency diff gate.
    std::printf("\ntelemetry rate runs (windowed p99/p99.9 + SLO grades):\n");
    bool telemetry_ok = true;
    for (const auto& [mode, name] :
         {std::pair{ProtoMode::off, "off"}, std::pair{ProtoMode::eager, "eager"}}) {
      BenchTelemetry t;
      BenchOptions mode_opts = opts;
      if (mode_opts.telemetry_prefix.empty())
        mode_opts.telemetry_prefix = std::string("proto_sweep_") + name;
      if (mode_opts.prof_prefix.empty())
        mode_opts.prof_prefix = mode_opts.telemetry_prefix;
      const RateResult r = run_rate(mode, 256, senders, per_sender, &mode_opts, &t);
      all_correct = all_correct && r.correct;
      if (t.ticks == 0 || t.slo_compliance < 1.0) telemetry_ok = false;
      std::printf("  %-6s %9.0f msg/s  ticks %5llu  e2e p99 %9.1f us  "
                  "p99.9 %9.1f us  compliance %.4f\n",
                  name, r.msgs_per_sec, static_cast<unsigned long long>(t.ticks),
                  t.e2e_p99_us, t.e2e_p999_us, t.slo_compliance);
      report.row();
      report.set("experiment", std::string("telemetry"));
      report.set("mode", std::string(name));
      report.set("payload_bytes", static_cast<std::int64_t>(256));
      report.set("msgs_per_sec", r.msgs_per_sec);
      report.set("telemetry_ticks", t.ticks);
      report.set("e2e_p99_us", t.e2e_p99_us);
      report.set("e2e_p999_us", t.e2e_p999_us);
      report.set("slo_compliance", t.slo_compliance);
      report.set("slo_max_burn", t.slo_max_burn);
    }
    report.summary("telemetry_ok", telemetry_ok);
    all_correct = all_correct && telemetry_ok;
  } else if (opts.prof) {
    const RateResult r = run_rate(ProtoMode::eager, 256, senders, per_sender, &opts);
    all_correct = all_correct && r.correct;
    std::printf("profiled run artifacts: %s + matching _trace.json\n",
                opts.report_path("proto_sweep").c_str());
  }

  if (opts.json) report.emit(opts.json_path);
  return all_correct && claims_hold ? 0 : 1;
}
