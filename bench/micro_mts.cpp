// Wall-clock microbenchmarks of the NCS_MTS runtime (google-benchmark):
// raw context switches, thread creation, scheduler queue operations and
// synchronization primitives. These measure the *implementation* on the
// build machine, complementing the simulated-time benches.
// With `--json[=path]` the binary additionally emits an "ncs-bench-v1"
// report of the multi-core scheduler's *simulated* per-core counters
// (dispatches / steals / cpu_busy_us on a fixed fan-out workload) — those
// are deterministic, so bench_diff.py can gate them at zero tolerance.
#include <benchmark/benchmark.h>

#include <string>

#include "cluster/bench_json.hpp"
#include "core/mts/sync.hpp"
#include "qt/context.hpp"

namespace {

using namespace ncs;

// --- raw qt context switch ---------------------------------------------------

qt::Context g_main_ctx;
qt::Context g_fiber_ctx;

void switcher(void*) {
  for (;;) qt::Context::switch_to(g_fiber_ctx, g_main_ctx);
}

void BM_ContextSwitch(benchmark::State& state) {
  qt::Stack stack;
  g_fiber_ctx.init(stack, switcher, nullptr);
  for (auto _ : state) {
    qt::Context::switch_to(g_main_ctx, g_fiber_ctx);  // in and back = 2 switches
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ContextSwitch);

// --- scheduler operations -----------------------------------------------------

mts::SchedulerParams zero_cost() {
  mts::SchedulerParams p;
  p.context_switch_cost = Duration::zero();
  p.thread_create_cost = Duration::zero();
  return p;
}

void BM_ThreadSpawnRunFinish(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    sched.spawn([] {});
    engine.run();
  }
}
BENCHMARK(BM_ThreadSpawnRunFinish);

void BM_SchedulerYieldPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    for (int t = 0; t < 2; ++t)
      sched.spawn([&sched, rounds] {
        for (int i = 0; i < rounds; ++i) sched.yield();
      });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_SchedulerYieldPingPong)->Arg(64)->Arg(1024);

void BM_SemaphorePingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    auto ping = std::make_shared<mts::Semaphore>(sched, 0);
    auto pong = std::make_shared<mts::Semaphore>(sched, 0);
    sched.spawn([=, &sched] {
      (void)sched;
      for (int i = 0; i < rounds; ++i) {
        ping->signal();
        pong->wait();
      }
    });
    sched.spawn([=] {
      for (int i = 0; i < rounds; ++i) {
        ping->wait();
        pong->signal();
      }
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_SemaphorePingPong)->Arg(256);

void BM_ChannelThroughput(benchmark::State& state) {
  const auto items = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    auto ch = std::make_shared<mts::Channel<int>>(sched);
    sched.spawn([=] {
      long sum = 0;
      for (int i = 0; i < items; ++i) sum += ch->pop();
      benchmark::DoNotOptimize(sum);
    });
    sched.spawn([=] {
      for (int i = 0; i < items; ++i) ch->push(i);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_ChannelThroughput)->Arg(1024);

// --- engine -------------------------------------------------------------------

void BM_EngineEventDispatch(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < events; ++i)
      engine.schedule_after(Duration::microseconds(i % 97), [] {});
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineEventDispatch)->Arg(10000);

// --- multi-core scheduler -----------------------------------------------------

/// The fixed smp fan-out workload: 32 user threads with lumpy per-thread
/// work (1..16 chunks of 100us compute — round-robin placement leaves the
/// per-core loads unequal, so early-draining cores steal from loaded
/// ones), dispatched over `cores` work-stealing run queues. Simulated time
/// and all per-core counters are deterministic for a given core count.
mts::SchedulerParams smp_params(int cores) {
  mts::SchedulerParams p = zero_cost();
  p.smp.n_cores = cores;
  p.smp.steal = mts::StealPolicy::seeded;
  p.smp.progress = mts::ProgressModel::on_demand;
  return p;
}

void run_smp_fanout(mts::Scheduler& sched) {
  for (int t = 0; t < 32; ++t)
    sched.spawn([&sched, t] {
      for (int i = 0; i < (1 << (t % 5)); ++i)
        sched.charge(Duration::microseconds(100), sim::Activity::compute);
    });
}

void BM_MultiCoreChargeFanout(benchmark::State& state) {
  const auto cores = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, smp_params(cores));
    run_smp_fanout(sched);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_MultiCoreChargeFanout)->Arg(1)->Arg(2)->Arg(4);

/// Emits the deterministic per-core counters of the fan-out workload under
/// the stable ncs-bench-v1 schema, one row per (cores, core).
void emit_smp_report(const std::string& path) {
  ncs::cluster::BenchReport report("micro_mts");
  for (const int cores : {1, 2, 4}) {
    sim::Engine engine;
    mts::Scheduler sched(engine, smp_params(cores));
    run_smp_fanout(sched);
    engine.run();
    for (int c = 0; c < sched.n_cores(); ++c) {
      const mts::CoreStats& s = sched.core_stats(c);
      report.row();
      report.set("experiment", std::string("smp_fanout"));
      report.set("cores", cores);
      report.set("core", c);
      report.set("dispatches", s.dispatches);
      report.set("steals", s.steals_in);
      report.set("cpu_busy_us", static_cast<double>(s.cpu_busy.ps()) * 1e-6);
      report.set("elapsed_us",
                 static_cast<double>((engine.now() - TimePoint::origin()).ps()) * 1e-6);
    }
  }
  report.emit(path);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json[=path] before google-benchmark sees (and rejects) it.
  std::string json_path;
  const bool want_json = ncs::cluster::parse_json_flag(argc, argv, &json_path);
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) continue;
    argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (want_json) emit_smp_report(json_path);
  return 0;
}
