// Wall-clock microbenchmarks of the NCS_MTS runtime (google-benchmark):
// raw context switches, thread creation, scheduler queue operations and
// synchronization primitives. These measure the *implementation* on the
// build machine, complementing the simulated-time benches.
#include <benchmark/benchmark.h>

#include "core/mts/sync.hpp"
#include "qt/context.hpp"

namespace {

using namespace ncs;

// --- raw qt context switch ---------------------------------------------------

qt::Context g_main_ctx;
qt::Context g_fiber_ctx;

void switcher(void*) {
  for (;;) qt::Context::switch_to(g_fiber_ctx, g_main_ctx);
}

void BM_ContextSwitch(benchmark::State& state) {
  qt::Stack stack;
  g_fiber_ctx.init(stack, switcher, nullptr);
  for (auto _ : state) {
    qt::Context::switch_to(g_main_ctx, g_fiber_ctx);  // in and back = 2 switches
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ContextSwitch);

// --- scheduler operations -----------------------------------------------------

mts::SchedulerParams zero_cost() {
  mts::SchedulerParams p;
  p.context_switch_cost = Duration::zero();
  p.thread_create_cost = Duration::zero();
  return p;
}

void BM_ThreadSpawnRunFinish(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    sched.spawn([] {});
    engine.run();
  }
}
BENCHMARK(BM_ThreadSpawnRunFinish);

void BM_SchedulerYieldPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    for (int t = 0; t < 2; ++t)
      sched.spawn([&sched, rounds] {
        for (int i = 0; i < rounds; ++i) sched.yield();
      });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_SchedulerYieldPingPong)->Arg(64)->Arg(1024);

void BM_SemaphorePingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    auto ping = std::make_shared<mts::Semaphore>(sched, 0);
    auto pong = std::make_shared<mts::Semaphore>(sched, 0);
    sched.spawn([=, &sched] {
      (void)sched;
      for (int i = 0; i < rounds; ++i) {
        ping->signal();
        pong->wait();
      }
    });
    sched.spawn([=] {
      for (int i = 0; i < rounds; ++i) {
        ping->wait();
        pong->signal();
      }
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_SemaphorePingPong)->Arg(256);

void BM_ChannelThroughput(benchmark::State& state) {
  const auto items = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    mts::Scheduler sched(engine, zero_cost());
    auto ch = std::make_shared<mts::Channel<int>>(sched);
    sched.spawn([=] {
      long sum = 0;
      for (int i = 0; i < items; ++i) sum += ch->pop();
      benchmark::DoNotOptimize(sum);
    });
    sched.spawn([=] {
      for (int i = 0; i < items; ++i) ch->push(i);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_ChannelThroughput)->Arg(1024);

// --- engine -------------------------------------------------------------------

void BM_EngineEventDispatch(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < events; ++i)
      engine.schedule_after(Duration::microseconds(i % 97), [] {});
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineEventDispatch)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
