// Extension benchmark (not in the paper, but the standard 1995-style
// characterization): ping-pong latency and one-way streaming bandwidth for
// the three runtimes — plain p4/TCP, NCS-NSM (over p4) and NCS-HSM (ATM
// API) — on the ATM LAN and across the NYNET WAN hop.
#include <cstdio>

#include "cluster/cluster.hpp"

using namespace ncs;
using namespace ncs::cluster;

namespace {

enum class Runtime { p4, nsm, hsm };

const char* name_of(Runtime r) {
  switch (r) {
    case Runtime::p4: return "p4/TCP";
    case Runtime::nsm: return "NCS-NSM";
    case Runtime::hsm: return "NCS-HSM";
  }
  return "?";
}

/// Round-trip time for `bytes`-sized payloads, averaged over `rounds`.
Duration ping_pong(Runtime rt, bool wan, std::size_t bytes, int rounds) {
  ClusterConfig cfg = wan ? nynet_wan(2) : sun_atm_lan(2);
  cfg.n_procs = 2;
  Cluster c(cfg);
  if (rt == Runtime::p4) {
    c.init_p4();
  } else if (rt == Runtime::nsm) {
    c.init_ncs_nsm();
  } else {
    c.init_ncs_hsm();
  }

  TimePoint started, finished;
  c.run([&](int rank) {
    const Bytes payload(bytes, std::byte{0x42});
    if (rt == Runtime::p4) {
      p4::Process& p = c.p4().process(rank);
      if (rank == 0) {
        started = c.engine().now();
        for (int i = 0; i < rounds; ++i) {
          p.send(1, 1, payload);
          int type = 1, from = 1;
          (void)p.recv(&type, &from);
        }
        finished = c.engine().now();
      } else {
        for (int i = 0; i < rounds; ++i) {
          int type = 1, from = 0;
          (void)p.recv(&type, &from);
          p.send(1, 0, payload);
        }
      }
    } else {
      mps::Node& node = c.node(rank);
      const int t = node.t_create([&, rank] {
        if (rank == 0) {
          started = c.engine().now();
          for (int i = 0; i < rounds; ++i) {
            node.send(0, 0, 1, payload);
            (void)node.recv(0, 1, 0);
          }
          finished = c.engine().now();
        } else {
          for (int i = 0; i < rounds; ++i) {
            (void)node.recv(0, 0, 0);
            node.send(0, 0, 0, payload);
          }
        }
      });
      node.host().join(node.user_thread(t));
    }
  });
  return (finished - started) / rounds;
}

/// One-way bandwidth: rank 0 streams `count` messages of `bytes`, rank 1
/// acknowledges the last one.
double stream_mbps(Runtime rt, std::size_t bytes, int count) {
  ClusterConfig cfg = sun_atm_lan(2);
  cfg.n_procs = 2;
  Cluster c(cfg);
  if (rt == Runtime::p4) {
    c.init_p4();
  } else if (rt == Runtime::nsm) {
    c.init_ncs_nsm();
  } else {
    c.init_ncs_hsm();
  }

  TimePoint finished;
  c.run([&](int rank) {
    const Bytes payload(bytes, std::byte{0x42});
    if (rt == Runtime::p4) {
      p4::Process& p = c.p4().process(rank);
      if (rank == 0) {
        for (int i = 0; i < count; ++i) p.send(1, 1, payload);
        int type = 2, from = 1;
        (void)p.recv(&type, &from);
        finished = c.engine().now();
      } else {
        for (int i = 0; i < count; ++i) {
          int type = 1, from = 0;
          (void)p.recv(&type, &from);
        }
        p.send(2, 0, Bytes(1, std::byte{1}));
      }
    } else {
      mps::Node& node = c.node(rank);
      const int t = node.t_create([&, rank] {
        if (rank == 0) {
          for (int i = 0; i < count; ++i) node.send(0, 0, 1, payload);
          (void)node.recv(0, 1, 0);
          finished = c.engine().now();
        } else {
          for (int i = 0; i < count; ++i) (void)node.recv(0, 0, 0);
          node.send(0, 0, 0, Bytes(1, std::byte{1}));
        }
      });
      node.host().join(node.user_thread(t));
    }
  });
  const double seconds = finished.sec();
  return static_cast<double>(bytes) * count * 8.0 / seconds / 1e6;
}

}  // namespace

int main() {
  std::printf("Latency/bandwidth characterization: p4/TCP vs NCS-NSM vs NCS-HSM\n\n");

  std::printf("Round-trip latency, ATM LAN (ms):\n%10s", "bytes");
  for (Runtime r : {Runtime::p4, Runtime::nsm, Runtime::hsm}) std::printf("  %9s", name_of(r));
  std::printf("\n");
  for (const std::size_t bytes : {1u, 64u, 1024u, 8192u, 65536u}) {
    std::printf("%10zu", bytes);
    for (Runtime r : {Runtime::p4, Runtime::nsm, Runtime::hsm})
      std::printf("  %9.3f", ping_pong(r, false, bytes, 8).ms());
    std::printf("\n");
  }

  std::printf("\nRound-trip latency, NYNET WAN hop (ms):\n%10s", "bytes");
  for (Runtime r : {Runtime::p4, Runtime::nsm, Runtime::hsm}) std::printf("  %9s", name_of(r));
  std::printf("\n");
  for (const std::size_t bytes : {64u, 8192u}) {
    std::printf("%10zu", bytes);
    for (Runtime r : {Runtime::p4, Runtime::nsm, Runtime::hsm})
      std::printf("  %9.3f", ping_pong(r, true, bytes, 4).ms());
    std::printf("\n");
  }

  std::printf("\nOne-way streaming bandwidth, ATM LAN (Mbit/s, 32 x 64 KB):\n");
  for (Runtime r : {Runtime::p4, Runtime::nsm, Runtime::hsm})
    std::printf("  %-9s %8.1f\n", name_of(r), stream_mbps(r, 65536, 32));

  std::printf("\nThe HSM tier approaches the host-copy bound (Fig 3b: 2 protocol\n"
              "accesses per word); the TCP tiers are capped by the socket path and\n"
              "p4's per-message costs. The WAN rows are dominated by the constant\n"
              "DS-3 propagation delay, which no software tier can remove — the\n"
              "paper's motivation for overlapping it instead (Fig 4).\n");
  return 0;
}
