// Event-core scale sweep: how far the simulator scales in P (ROADMAP item
// "scale the simulator itself").
//
// Two stages:
//
//   core   Synthetic event-core stress at P hosts — per-host message
//          chains with RTO re-arm/cancel, same-time cell storms and
//          Burst-sized closures, run back-to-back on the calendar queue
//          and on the legacy std::map queue (best of two reps per point —
//          wall-clock on a shared machine only ever measures too slow).
//          Reports wall-clock events/sec for both and the speedup; the
//          run fails if the calendar queue is not at least 5x the
//          std::map queue at P >= 256 (3x under --fast, whose shrunken
//          budget leaves the P = 1024 points ramp-dominated).
//
//   ring   Full-stack messages/sec: P NCS/HSM processes on the multi-site
//          SONET WAN (chain of LAN stars), nearest-neighbour ring traffic
//          over sparsely provisioned PVCs, up to P = 1024.
//
// Wall-clock rates (events_per_sec, msgs_per_sec, speedup) are the
// higher-is-better metric class in tools/bench_diff.py; simulated-time
// fields stay deterministic and diff exactly. `--fast` shrinks the event
// and message budgets for CI; `--json[=path]` emits ncs-bench-v1.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "atm/cell_arena.hpp"
#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

using namespace ncs;
using namespace ncs::cluster;

namespace {

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct CorePoint {
  double events_per_sec = 0;
  std::uint64_t processed = 0;
};

/// The hot event mix of a busy simulated host, multiplied by P: short
/// message chains, a far-future retransmit timer re-armed (cancel + new)
/// on every message, and bursts of same-timestamp cell events. Closures
/// are padded to the ~80-byte Burst-delivery size so the EventFn inline
/// path is what gets measured.
CorePoint core_stress(sim::Engine::QueueKind kind, int n_hosts,
                      std::uint64_t min_events) {
  // A handful of concurrent chains per host, like the paper's applications
  // (the JPEG pipeline keeps ~5 user threads per process in flight).
  constexpr int kChainsPerHost = 4;
  sim::Engine e{kind};
  Rng rng{0x5CA1Eu + static_cast<std::uint64_t>(n_hosts)};
  const int chains = n_hosts * kChainsPerHost;
  // Enough ticks per chain that steady state, not ramp-up/drain, is what
  // gets measured — at P=1024 that is 4096 concurrent chains.
  const std::uint64_t target_events =
      std::max(min_events, static_cast<std::uint64_t>(chains) * 48);
  std::vector<sim::EventId> rto(static_cast<std::size_t>(chains), 0);
  std::uint64_t fired = 0;

  struct Pad {
    unsigned char bytes[56];
  };
  Pad pad;
  std::memset(pad.bytes, 0, sizeof pad.bytes);

  std::function<void(int)> tick = [&](int c) {
    const auto uc = static_cast<std::size_t>(c);
    ++fired;
    if (rto[uc] != 0) e.cancel(rto[uc]);
    rto[uc] = e.schedule_after(Duration::milliseconds(10), [&rto, uc] { rto[uc] = 0; });
    if (fired >= target_events) return;
    // The message's cell pipeline: a few wire-time events on a sub-µs
    // lattice (53-byte cells at TAXI speed) between the µs-spaced ticks.
    for (int k = 1; k <= 3; ++k)
      e.schedule_after(Duration::nanoseconds(static_cast<double>(k) * 3030.0),
                       [&fired, pad] {
                         (void)pad;
                         ++fired;
                       });
    const auto gap = Duration::microseconds(static_cast<double>(1 + rng.next_below(50)));
    e.schedule_after(gap, [&tick, pad, c] {
      (void)pad;
      tick(c);
    });
    if ((fired & 7u) == 0) {
      for (int k = 0; k < 4; ++k)
        e.schedule_after(Duration::microseconds(5), [&fired, pad] {
          (void)pad;
          ++fired;
        });
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < chains; ++c)
    e.schedule_after(Duration::microseconds(static_cast<double>(rng.next_below(50))),
                     [&tick, pad, c] {
                       (void)pad;
                       tick(c);
                     });
  e.run();
  const double wall = wall_since(t0);
  return {static_cast<double>(e.processed()) / wall, e.processed()};
}

struct RingPoint {
  double wall_msgs_per_sec = 0;
  double wall_events_per_sec = 0;
  double sim_elapsed_sec = 0;
  std::uint64_t events = 0;
};

/// Full NCS/HSM stack on the multi-site WAN chain: every rank streams
/// `msgs_per_host` 1 KB messages to its right neighbour and drains the
/// same count from its left. Only the ring pairs are provisioned.
RingPoint ring_throughput(int n_procs, int msgs_per_host) {
  ClusterConfig cfg = nynet_wan_multi(n_procs, std::min(8, std::max(1, n_procs / 2)));
  for (int i = 0; i < n_procs; ++i) {
    cfg.wan_provision.emplace_back(i, (i + 1) % n_procs);
    cfg.wan_provision.emplace_back((i + 1) % n_procs, i);  // ack/credit path
  }

  Cluster c(cfg);
  c.init_ncs_hsm();
  const Bytes payload(1024, std::byte{0x5A});

  const auto t0 = std::chrono::steady_clock::now();
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      const int dst = (rank + 1) % n_procs;
      for (int m = 0; m < msgs_per_host; ++m) node.send(0, 0, dst, payload);
      for (int m = 0; m < msgs_per_host; ++m)
        (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
    });
    node.host().join(node.user_thread(t));
  });
  const double wall = wall_since(t0);

  RingPoint p;
  p.events = c.engine().processed();
  p.sim_elapsed_sec = (c.engine().now() - TimePoint::origin()).sec();
  const double msgs = static_cast<double>(n_procs) * msgs_per_host;
  p.wall_msgs_per_sec = msgs / wall;
  p.wall_events_per_sec = static_cast<double>(p.events) / wall;
  return p;
}

struct TelemetryPoint {
  BenchTelemetry t;
  double sim_elapsed_sec = 0;
};

/// The ring workload again, with the live telemetry plane on: windowed
/// e2e sketches sampled every period, a generous latency SLO (the ring is
/// fault-free; its compliance must be 1.0), counter tracks when tracing.
TelemetryPoint telemetry_ring(int n_procs, int msgs_per_host,
                              const BenchOptions& opts) {
  ClusterConfig cfg = nynet_wan_multi(n_procs, std::min(8, std::max(1, n_procs / 2)));
  for (int i = 0; i < n_procs; ++i) {
    cfg.wan_provision.emplace_back(i, (i + 1) % n_procs);
    cfg.wan_provision.emplace_back((i + 1) % n_procs, i);
  }
  opts.apply(&cfg, "scale_sweep_p" + std::to_string(n_procs));
  cfg.telemetry = true;
  obs::SloSpec slo;
  slo.name = "e2e_p99_under_200ms";
  slo.kind = obs::SloKind::latency;
  slo.sketch = "mps/e2e";
  slo.threshold = Duration::milliseconds(200);
  slo.target = 0.99;
  cfg.slos.push_back(slo);

  Cluster c(cfg);
  c.init_ncs_hsm();
  const Bytes payload(1024, std::byte{0x5A});
  c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      const int dst = (rank + 1) % n_procs;
      for (int m = 0; m < msgs_per_host; ++m) node.send(0, 0, dst, payload);
      for (int m = 0; m < msgs_per_host; ++m)
        (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
    });
    node.host().join(node.user_thread(t));
  });

  TelemetryPoint tp;
  tp.sim_elapsed_sec = (c.engine().now() - TimePoint::origin()).sec();
  tp.t = fold_telemetry(c);
  return tp;
}

/// Detailed-cells LAN traffic with the CellArena pool warmed by one run;
/// the measured run must serve every SAR segmentation from the pool.
struct ArenaPoint {
  std::uint64_t acquires = 0;
  std::uint64_t heap_allocs = 0;
};

ArenaPoint arena_census(int msgs) {
  const auto traffic = [msgs] {
    ClusterConfig cfg = sun_atm_lan(4);
    cfg.nic.detailed_cells = true;
    Cluster c(cfg);
    c.init_ncs_hsm();
    const Bytes payload(4096, std::byte{0x5A});
    c.run([&](int rank) {
      mps::Node& node = c.node(rank);
      const int t = node.t_create([&node, rank, &payload, msgs] {
        const int dst = (rank + 1) % 4;
        for (int m = 0; m < msgs; ++m) node.send(0, 0, dst, payload);
        for (int m = 0; m < msgs; ++m)
          (void)node.recv(mps::kAnyThread, mps::kAnyProcess, 0);
      });
      node.host().join(node.user_thread(t));
    });
  };
  traffic();  // warm: the pool learns the train sizes this workload needs
  atm::CellArena::reset_census();
  traffic();  // measured: steady state must not touch the heap
  return {atm::CellArena::census().acquires, atm::CellArena::census().heap_allocs};
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("scale_sweep");
  const BenchOptions opts = parse_bench_options(argc, argv);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  const std::vector<int> sweep = {4, 16, 64, 256, 1024};
  const std::uint64_t core_events = fast ? 200'000 : 800'000;

  std::printf("Event-core scale sweep (%s budgets)\n\n", fast ? "fast" : "full");
  std::printf("core: >= %llu events through both queue backends per point\n",
              static_cast<unsigned long long>(core_events));
  std::printf("%6s %16s %16s %9s\n", "P", "calendar ev/s", "std::map ev/s", "speedup");

  const double gate = fast ? 3.0 : 5.0;
  bool speedup_ok = true;
  sim::EventFn::reset_census();
  auto best_of = [&](sim::Engine::QueueKind kind, int p) {
    CorePoint best = core_stress(kind, p, core_events);
    const CorePoint again = core_stress(kind, p, core_events);
    if (again.events_per_sec > best.events_per_sec) best = again;
    return best;
  };
  for (const int p : sweep) {
    const CorePoint cal = best_of(sim::Engine::QueueKind::calendar, p);
    const CorePoint leg = best_of(sim::Engine::QueueKind::legacy_map, p);
    const double speedup = cal.events_per_sec / leg.events_per_sec;
    if (p >= 256 && speedup < gate) speedup_ok = false;
    std::printf("%6d %16.0f %16.0f %8.2fx\n", p, cal.events_per_sec, leg.events_per_sec,
                speedup);
    report.row();
    report.set("stage", std::string("core"));
    report.set("procs", p);
    report.set("events", cal.processed);
    report.set("events_per_sec", cal.events_per_sec);
    report.set("legacy_events_per_sec", leg.events_per_sec);
    report.set("speedup_vs_legacy", speedup);
  }
  // The zero-allocation claim, enforced: every closure the stress schedules
  // must fit the EventFn inline buffer.
  const auto census = sim::EventFn::census();
  const bool inline_only = census.heap_constructions == 0;

  std::printf("\nring: NCS/HSM neighbour ring on the multi-site WAN chain\n");
  std::printf("%6s %6s %14s %16s %14s\n", "P", "msgs", "sim msgs/s", "wall msgs/s",
              "wall ev/s");
  for (const int p : sweep) {
    const int msgs = std::max(2, (fast ? 2048 : 16384) / p);
    const RingPoint r = ring_throughput(p, msgs);
    const double sim_rate = static_cast<double>(p) * msgs / r.sim_elapsed_sec;
    std::printf("%6d %6d %14.0f %16.0f %14.0f\n", p, msgs, sim_rate, r.wall_msgs_per_sec,
                r.wall_events_per_sec);
    report.row();
    report.set("stage", std::string("ring"));
    report.set("procs", p);
    report.set("msgs_per_host", msgs);
    report.set("sim_events", r.events);
    report.set("sim_elapsed_sec", r.sim_elapsed_sec);
    report.set("msgs_per_sec", r.wall_msgs_per_sec);
    report.set("events_per_sec", r.wall_events_per_sec);
  }

  // Telemetry stage (--telemetry): tail-latency series + SLO grades over
  // the same ring workload, at CI-sized P. Fault-free, so the generous
  // latency objective must hold every window.
  bool telemetry_ok = true;
  if (opts.telemetry) {
    std::printf("\ntelemetry: windowed p99/p99.9 + SLO grades on the WAN ring\n");
    std::printf("%6s %6s %10s %12s %12s %11s %9s\n", "P", "msgs", "ticks",
                "e2e p99-us", "e2e p99.9-us", "compliance", "max-burn");
    for (const int p : {4, 16}) {
      const int msgs = std::max(2, (fast ? 2048 : 16384) / p);
      const TelemetryPoint tp = telemetry_ring(p, msgs, opts);
      if (tp.t.ticks == 0 || tp.t.slo_compliance < 1.0) telemetry_ok = false;
      std::printf("%6d %6d %10llu %12.1f %12.1f %11.4f %9.2f\n", p, msgs,
                  static_cast<unsigned long long>(tp.t.ticks), tp.t.e2e_p99_us,
                  tp.t.e2e_p999_us, tp.t.slo_compliance, tp.t.slo_max_burn);
      report.row();
      report.set("stage", std::string("telemetry"));
      report.set("procs", p);
      report.set("msgs_per_host", msgs);
      report.set("telemetry_ticks", tp.t.ticks);
      report.set("sim_elapsed_sec", tp.sim_elapsed_sec);
      report.set("e2e_p99_us", tp.t.e2e_p99_us);
      report.set("e2e_p999_us", tp.t.e2e_p999_us);
      report.set("slo_compliance", tp.t.slo_compliance);
      report.set("slo_max_burn", tp.t.slo_max_burn);
    }
    std::printf("fault-free SLO held every window: %s\n", telemetry_ok ? "yes" : "NO");
  }

  // The SAR data-path analogue of the EventFn census: with the pool warm,
  // steady-state detailed-cells traffic must be allocation-free.
  const ArenaPoint arena = arena_census(fast ? 8 : 24);
  const bool arena_ok = arena.heap_allocs == 0 && arena.acquires > 0;

  const bool all_ok = speedup_ok && inline_only && arena_ok && telemetry_ok;
  std::printf("\ncalendar >= %.0fx std::map at P >= 256: %s\n", gate, speedup_ok ? "yes" : "NO");
  std::printf("event closures all inline (no heap): %s\n", inline_only ? "yes" : "NO");
  std::printf("cell trains pooled (warm run: %llu acquires, %llu heap allocs): %s\n",
              static_cast<unsigned long long>(arena.acquires),
              static_cast<unsigned long long>(arena.heap_allocs), arena_ok ? "yes" : "NO");
  report.summary("speedup_ok", speedup_ok);
  report.summary("event_fn_heap_constructions",
                 static_cast<std::int64_t>(census.heap_constructions));
  report.summary("cell_arena_acquires", static_cast<std::int64_t>(arena.acquires));
  report.summary("cell_arena_heap_allocs", static_cast<std::int64_t>(arena.heap_allocs));
  if (opts.telemetry) report.summary("telemetry_ok", telemetry_ok);
  report.summary("all_ok", all_ok);
  if (opts.json) report.emit(opts.json_path);
  return all_ok ? 0 : 1;
}
