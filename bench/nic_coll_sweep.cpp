// NIC-offload collective sweep: the firmware combine/forward path against
// the best host algorithm for each op (barrier: dissemination; bcast:
// binomial tree; allreduce: recursive doubling) over process count and
// payload size on the ATM LAN tier. Every case forces one algorithm via
// ClusterConfig::ncs.coll and times `iters` back-to-back collectives in
// simulated time; a '*' (and "selected" in the JSON) marks the pick
// coll::select makes with nic_offload enabled, so the table shows whether
// the selection window (offload_min_procs / offload_max_bytes) sits where
// the measured crossovers do.
//
// The sweep ends with a WAN chaos stage: the same mixed collective
// workload on the 4-node SONET WAN, once clean and once with the backbone
// cut mid-operation. The faulted run must fall back to the host
// algorithms (fallbacks > 0), leak no NIC contexts, and produce a
// bit-identical digest — the "result_hash" rows ride the bench-diff gate.
//
//   --fast   CI-sized grid (P in {4,8,16}, two payload sizes)
//   --json   ncs-bench-v1 rows: op/algorithm/n_procs/payload_bytes/
//            per_op_us/selected + wan rows, summary speedups and the
//            measured allreduce crossover
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/drivers.hpp"
#include "coll/algorithms.hpp"
#include "coll/select.hpp"

namespace {

using namespace ncs;
using namespace ncs::literals;
using namespace ncs::cluster;

struct CaseResult {
  double per_op_us = 0.0;
  bool correct = false;
};

std::byte pattern_at(std::size_t i) {
  return static_cast<std::byte>((i * 31 + 7) & 0xFF);
}

void run_collectives(mps::Node& node, coll::Op op, int procs, std::size_t bytes, int iters,
                     bool* ok) {
  if (op == coll::Op::barrier) {
    for (int it = 0; it < iters; ++it) node.barrier();
  } else if (op == coll::Op::bcast) {
    Bytes payload;
    if (node.rank() == 0) {
      payload.resize(bytes);
      for (std::size_t i = 0; i < bytes; ++i) payload[i] = pattern_at(i);
    }
    for (int it = 0; it < iters; ++it) {
      const Bytes out = node.bcast(0, payload);
      if (out.size() != bytes) *ok = false;
      for (std::size_t i = 0; i < out.size(); i += 97)
        if (out[i] != pattern_at(i)) *ok = false;
    }
  } else {
    const std::size_t n = bytes / sizeof(double);
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = static_cast<double>(node.rank() + 1) * static_cast<double>(i % 17 + 1);
    // Small-integer contributions: the rank sums are exact in FP, so the
    // check is equality regardless of which fold order (NIC tree or host
    // recursive doubling) produced the result.
    const double ranks = static_cast<double>(procs) * static_cast<double>(procs + 1) / 2.0;
    for (int it = 0; it < iters; ++it) {
      const auto r = node.allreduce_sum(v);
      if (r.size() != n) *ok = false;
      for (std::size_t i = 0; i < r.size(); i += 61)
        if (r[i] != ranks * static_cast<double>(i % 17 + 1)) *ok = false;
    }
  }
}

CaseResult run_case(coll::Op op, coll::Algorithm algo, int procs, std::size_t bytes,
                    int iters) {
  ClusterConfig cfg = sun_atm_lan(procs);
  if (algo == coll::Algorithm::nic_offload) cfg.ncs.coll.nic_offload = true;
  cfg.ncs.coll.set_force(op, algo);
  Cluster cluster(std::move(cfg));
  cluster.init_ncs_hsm();

  bool ok = true;
  const Duration elapsed = cluster.run([&](int rank) {
    run_collectives(cluster.node(rank), op, procs, bytes, iters, &ok);
  });
  return {elapsed.sec() * 1e6 / iters, ok};
}

struct WanOutcome {
  std::uint64_t hash = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t rearms = 0;
  std::size_t contexts_leaked = 0;
  double elapsed_sec = 0.0;
};

/// Mixed allreduce+bcast+barrier rounds on the offloaded 4-node SONET WAN,
/// digesting every rank's results in rank order (same shape as the
/// coll_offload fault tests).
WanOutcome run_wan(bool faulted) {
  constexpr int kProcs = 4;
  constexpr std::size_t kN = 32;
  constexpr int kOps = 4;

  ClusterConfig cfg = nynet_wan(kProcs);
  cfg.ncs.coll.nic_offload = true;
  cfg.ncs.error = {.kind = mps::ErrorControlKind::retransmit, .rto = 50_ms};
  if (faulted) cfg.faults.link_down("sonet", TimePoint::origin() + 1_ms, 120_ms);
  Cluster c(std::move(cfg));
  c.init_ncs_hsm();

  std::vector<std::vector<double>> sums(kProcs);
  std::vector<Bytes> casts(kProcs);
  const Duration elapsed = c.run([&](int rank) {
    mps::Node& node = c.node(rank);
    const int t = node.t_create([&, rank] {
      std::vector<double> mine(kN);
      for (std::size_t i = 0; i < kN; ++i)
        mine[i] = std::sin(static_cast<double>(rank + 1) * (static_cast<double>(i) + 0.5));
      for (int op = 0; op < kOps; ++op) {
        std::vector<double> s = node.allreduce_sum(mine);
        for (double v : s) sums[static_cast<std::size_t>(rank)].push_back(v);
        const Bytes payload = rank == 0 ? coll::pack_doubles(s) : Bytes{};
        append(casts[static_cast<std::size_t>(rank)], node.bcast(0, payload));
        node.barrier();
      }
    });
    node.host().join(node.user_thread(t));
  });

  WanOutcome out;
  out.elapsed_sec = elapsed.sec();
  out.hash = 0xCBF29CE484222325ull;
  for (const auto& s : sums)
    out.hash = fnv1a(s.data(), s.size() * sizeof(double), out.hash);
  for (const auto& b : casts) out.hash = fnv1a(b.data(), b.size(), out.hash);
  for (int r = 0; r < kProcs; ++r) {
    out.fallbacks += c.coll_port(r).stats().fallbacks;
    out.rearms += c.coll_port(r).stats().rearms;
    out.contexts_leaked += c.coll_port(r).engine().pending_ops();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  const std::vector<int> procs =
      fast ? std::vector<int>{4, 8, 16} : std::vector<int>{4, 8, 16, 32, 64};
  const std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{256, 2048}
           : std::vector<std::size_t>{64, 512, 2048, 8192};
  constexpr int kIters = 2;

  struct Sweep {
    coll::Op op;
    coll::Algorithm host;  // the best host algorithm at these sizes
  };
  const std::vector<Sweep> sweeps = {
      {coll::Op::barrier, coll::Algorithm::dissemination},
      {coll::Op::bcast, coll::Algorithm::binomial_tree},
      {coll::Op::allreduce, coll::Algorithm::recursive_doubling},
  };

  // What coll::select would pick with the offload window enabled.
  coll::Params sel;
  sel.nic_offload = true;

  BenchReport report("nic_coll_sweep");
  bool all_correct = true;
  std::map<std::string, double> us;
  const auto key = [](coll::Op op, coll::Algorithm a, int p, std::size_t b) {
    return std::string(coll::to_string(op)) + "/" + coll::to_string(a) + "/" +
           std::to_string(p) + "/" + std::to_string(b);
  };

  std::printf("NIC-offload collective sweep, ATM LAN (HSM), %d iterations per case; "
              "'*' = coll::select's pick with nic_offload on\n",
              kIters);
  for (const Sweep& s : sweeps) {
    // Barrier has no payload; one size-0 row per P.
    const std::vector<std::size_t> case_sizes =
        s.op == coll::Op::barrier ? std::vector<std::size_t>{0} : sizes;
    for (const int p : procs) {
      for (const std::size_t bytes : case_sizes) {
        std::printf("%-9s P=%-2d %7zu B:", coll::to_string(s.op), p, bytes);
        for (const coll::Algorithm algo : {s.host, coll::Algorithm::nic_offload}) {
          const CaseResult r = run_case(s.op, algo, p, bytes, kIters);
          all_correct = all_correct && r.correct;
          const bool selected = coll::select(s.op, p, bytes, sel) == algo;
          us[key(s.op, algo, p, bytes)] = r.per_op_us;

          report.row();
          report.set("op", std::string(coll::to_string(s.op)));
          report.set("algorithm", std::string(coll::to_string(algo)));
          report.set("n_procs", p);
          report.set("payload_bytes", static_cast<std::int64_t>(bytes));
          report.set("per_op_us", r.per_op_us);
          report.set("selected", selected);
          std::printf("  %-18s %9.1f us%s", coll::to_string(algo), r.per_op_us,
                      selected ? "*" : " ");
        }
        std::printf("\n");
      }
    }
  }

  // The tentpole's headline claim: the firmware barrier beats dissemination
  // from P = 16 up (the sweep fails otherwise), and by more as P grows.
  const int big_p = procs.back();
  const double barrier_speedup =
      us[key(coll::Op::barrier, coll::Algorithm::dissemination, 16, 0)] /
      us[key(coll::Op::barrier, coll::Algorithm::nic_offload, 16, 0)];
  const double barrier_speedup_big =
      us[key(coll::Op::barrier, coll::Algorithm::dissemination, big_p, 0)] /
      us[key(coll::Op::barrier, coll::Algorithm::nic_offload, big_p, 0)];
  all_correct = all_correct && barrier_speedup > 1.0;

  // Measured allreduce crossover at the largest group: the biggest swept
  // payload where the firmware path still wins. coll::Params's
  // offload_max_bytes should sit at this point.
  std::size_t crossover = 0;
  for (const std::size_t bytes : sizes)
    if (us[key(coll::Op::allreduce, coll::Algorithm::nic_offload, big_p, bytes)] <=
        us[key(coll::Op::allreduce, coll::Algorithm::recursive_doubling, big_p, bytes)])
      crossover = bytes;

  std::printf("barrier: offload %.2fx vs dissemination at P=16, %.2fx at P=%d\n",
              barrier_speedup, barrier_speedup_big, big_p);
  std::printf("allreduce: offload wins through %zu B at P=%d (params window: %zu B)\n",
              crossover, big_p, coll::Params{}.offload_max_bytes);
  report.summary("barrier_offload_speedup", barrier_speedup);
  report.summary("allreduce_crossover_bytes", static_cast<double>(crossover));

  // WAN chaos stage: clean vs backbone-cut digests must match bit for bit.
  const WanOutcome clean = run_wan(false);
  const WanOutcome faulted = run_wan(true);
  for (const auto* w : {&clean, &faulted}) {
    report.row();
    report.set("op", std::string(w == &clean ? "wan_clean" : "wan_chaos"));
    report.set("n_procs", 4);
    report.set("result_hash", w->hash);
    report.set("fallbacks", w->fallbacks);
    report.set("rearms", w->rearms);
    report.set("elapsed_sec", w->elapsed_sec);
  }
  const bool wan_ok = clean.hash == faulted.hash && clean.fallbacks == 0 &&
                      faulted.fallbacks > 0 && clean.contexts_leaked == 0 &&
                      faulted.contexts_leaked == 0;
  std::printf("wan chaos: clean %.3fs hash %016llx, faulted %.3fs hash %016llx "
              "(%llu fallbacks, %llu re-arms) -> %s\n",
              clean.elapsed_sec, static_cast<unsigned long long>(clean.hash),
              faulted.elapsed_sec, static_cast<unsigned long long>(faulted.hash),
              static_cast<unsigned long long>(faulted.fallbacks),
              static_cast<unsigned long long>(faulted.rearms),
              wan_ok ? "bit-identical" : "MISMATCH");
  all_correct = all_correct && wan_ok;

  std::printf("result verification: %s\n", all_correct ? "all cases correct" : "FAILED");
  if (opts.json) report.emit(opts.json_path);
  return all_correct ? 0 : 1;
}
