// Reproduces Figure 2: "Concurrent Data Transfers" — the multiple
// input/output buffer scheme. A single NCS thread pushes one large message
// through the HSM transport while the NIC drains buffers; with k >= 2
// buffers the host's copy of chunk i+1 overlaps the adapter's DMA/SAR/wire
// work on chunk i. The sweep shows transfer time vs buffer count and chunk
// size, plus the ideal-pipeline bound.
#include <cstdio>

#include "atm/network.hpp"
#include "core/mps/atm_transport.hpp"
#include "core/mts/scheduler.hpp"

using namespace ncs;

namespace {

/// Time to push `bytes` through the HSM path with the given NIC layout.
Duration measure(std::size_t bytes, int tx_buffers, std::size_t chunk, double* cpu_busy) {
  sim::Engine engine;
  atm::LanConfig lc;
  lc.n_hosts = 2;
  lc.nic.tx_buffers = tx_buffers;
  lc.nic.io_buffer_size = chunk;
  atm::AtmLan lan(engine, lc);

  mts::SchedulerParams sp;
  sp.name = "sender";
  sp.cpu_mhz = 40;
  mts::Scheduler sender(engine, sp);
  mts::SchedulerParams rp;
  rp.name = "receiver";
  rp.cpu_mhz = 40;
  mts::Scheduler receiver(engine, rp);

  mps::AtmTransport::Params tp;
  tp.chunk_size = chunk;
  mps::AtmTransport tx(sender, lan.nic(0), tp);
  mps::AtmTransport rx(receiver, lan.nic(1), tp);

  TimePoint done;
  receiver.spawn([&] {
    (void)rx.recv_next();
    done = engine.now();
  });
  sender.spawn([&] {
    mps::Message msg;
    msg.from_process = 0;
    msg.to_process = 1;
    msg.data.assign(bytes, std::byte{0x5A});
    tx.submit(msg);
  });
  engine.run();
  if (cpu_busy != nullptr) *cpu_busy = sender.stats().cpu_busy.sec();
  return done - TimePoint::origin();
}

}  // namespace

int main() {
  std::printf("Figure 2: parallel data transfer through multiple NCS I/O buffers\n");
  std::printf("(1 MB message, HSM/ATM path, 140 Mbps TAXI; times in ms)\n\n");

  const std::size_t message = 1 << 20;

  std::printf("%-12s", "chunk size");
  for (int bufs : {1, 2, 3, 4, 8}) std::printf("  %4d buf%s", bufs, bufs == 1 ? " " : "s");
  std::printf("   speedup(1->2)\n");

  for (const std::size_t chunk : {2048u, 4096u, 8192u}) {
    std::printf("%-12zu", chunk);
    double t1 = 0, t2 = 0;
    for (const int bufs : {1, 2, 3, 4, 8}) {
      const Duration t = measure(message, bufs, chunk, nullptr);
      if (bufs == 1) t1 = t.ms();
      if (bufs == 2) t2 = t.ms();
      std::printf("  %8.2f", t.ms());
    }
    std::printf("   %.2fx\n", t1 / t2);
  }

  std::printf("\nWith one buffer the host copy and the adapter transfer strictly\n"
              "alternate; the second buffer lets them overlap (the paper's Fig 2),\n"
              "and further buffers only smooth jitter — the pipeline is already\n"
              "limited by its slowest stage.\n");

  // Sanity for the harness: overlap must help.
  const Duration one = measure(message, 1, 4096, nullptr);
  const Duration two = measure(message, 2, 4096, nullptr);
  if (two >= one) {
    std::printf("UNEXPECTED: no pipelining benefit\n");
    return 1;
  }
  return 0;
}
