// Overlap sweep across core counts, steal policies and progress models —
// the multi-core extension of Figure 4 / Table 4.
//
// Part 1 re-runs the Fig 4 overlapped matmul (host + 2 node processes,
// Ethernet, 2 compute threads per node) over cores x steal x progress and
// reports each node host's overlap ratio (overlapped / communicate, the
// Fig 4 quantity), elapsed time and steal counts: with >= 2 cores the
// node's compute threads charge in parallel, so more of the communication
// hides behind live computation.
//
// Part 2 probes the progress-model tradeoff on a message-processing
// pipeline with a background compute thread: `dedicated_core` reserves the
// last core for the system planes (snappy protocol, one fewer compute
// core), `on_demand` lets every core compute and progresses the protocol
// from the receiver. Sweeping compute-per-message moves the bottleneck
// from message turnaround to raw compute and flips the winner.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/matmul.hpp"
#include "cluster/bench_json.hpp"
#include "cluster/bench_opts.hpp"
#include "cluster/cluster.hpp"
#include "cluster/compute.hpp"
#include "obs/prof.hpp"

using namespace ncs;
using namespace ncs::cluster;
using apps::matmul::make_matrix;
using apps::matmul::Matrix;
using apps::matmul::op_count;
using apps::matmul::pack_rows;
using apps::matmul::unpack_rows;

namespace {

constexpr int kNodes = 2;
constexpr int kTpn = 2;

struct OverlapPoint {
  Duration elapsed;
  double node_overlap = 0.0;  // mean overlap ratio over the node hosts
  std::uint64_t steals = 0;
};

/// The Fig 4 threaded matmul under an smp configuration.
OverlapPoint run_fig4(int cores, mts::StealPolicy steal, mts::ProgressModel progress) {
  const int n = calibration().matmul_n;
  ClusterConfig cfg = sun_ethernet(0);
  cfg.n_procs = kNodes + 1;
  cfg.cores = cores;
  cfg.steal = steal;
  cfg.progress = progress;
  Cluster cluster(cfg);
  cluster.enable_timeline();
  cluster.init_ncs_nsm();

  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  const int rpt = n / (kNodes * kTpn);

  OverlapPoint out;
  out.elapsed = cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);
    if (rank == 0) {
      std::vector<int> tids;
      for (int t = 0; t < kTpn; ++t) {
        tids.push_back(node.t_create([&, t] {
          if (t == 0)
            for (int i = 1; i <= kNodes; ++i) node.send(0, 0, i, pack_rows(b.data(), n, n));
          for (int i = 1; i <= kNodes; ++i) {
            const int slice = (i - 1) * kTpn + t;
            node.send(t, t, i,
                      pack_rows(a.data() + static_cast<std::ptrdiff_t>(slice) * rpt * n, rpt, n));
          }
          for (int i = 1; i <= kNodes; ++i) (void)node.recv(t, i, t);
        }, t == 0 ? mts::kDefaultPriority - 1 : mts::kDefaultPriority,
           "host-t" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    } else {
      auto b_local = std::make_shared<std::vector<double>>();
      auto b_ready = std::make_shared<mts::Event>(node.host());
      std::vector<int> tids;
      for (int t = 0; t < kTpn; ++t) {
        tids.push_back(node.t_create([&, t, b_local, b_ready] {
          if (t == 0) {
            *b_local = unpack_rows(node.recv(0, 0, 0));
            b_ready->set();
          } else {
            b_ready->wait();
          }
          const auto a_rows = unpack_rows(node.recv(t, 0, t));
          std::vector<double> c_rows(static_cast<std::size_t>(rpt) * static_cast<std::size_t>(n));
          charge_compute(node.host(), op_count(rpt, n) * calibration().matmul_cycles_per_op);
          apps::matmul::multiply_rows(a_rows.data(), b_local->data(), c_rows.data(), n, 0, rpt);
          node.send(t, t, 0, pack_rows(c_rows.data(), rpt, n));
        }, mts::kDefaultPriority, "thread" + std::to_string(t)));
      }
      for (int tid : tids) node.host().join(node.user_thread(tid));
    }
  });

  double sum = 0.0;
  int node_hosts = 0;
  for (const auto& u : ncs::obs::fold_hosts(cluster.timeline())) {
    if (u.host == "p0") continue;  // the host rank barely computes
    sum += u.overlap_ratio();
    ++node_hosts;
  }
  if (node_hosts > 0) out.node_overlap = sum / node_hosts;
  for (int r = 0; r < cluster.n_procs(); ++r) out.steals += cluster.host(r).stats().steals;
  return out;
}

/// Part 2 workload: the host streams `msgs` messages of `size` bytes
/// round-robin to 2 worker threads on the node; each message costs
/// `compute` to process. A background thread on the node keeps charging
/// 500us analysis chunks the whole time (the application compute that a
/// dedicated progress core is protected from). Returns the time at which
/// the last message finished processing.
Duration run_progress_point(int msgs, int size, Duration compute,
                            mts::ProgressModel progress) {
  ClusterConfig cfg = sun_ethernet(2);
  cfg.cores = 2;
  cfg.steal = mts::StealPolicy::seeded;
  cfg.progress = progress;
  Cluster cluster(cfg);
  cluster.init_ncs_nsm();

  auto done = std::make_shared<bool>(false);
  auto finished = std::make_shared<TimePoint>(TimePoint::origin());
  cluster.run([&](int rank) {
    mps::Node& node = cluster.node(rank);
    if (rank == 0) {
      const int tid = node.t_create([&] {
        const Bytes payload(static_cast<std::size_t>(size), std::byte{7});
        for (int i = 0; i < msgs; ++i) node.send(i % kTpn, i % kTpn, 1, payload);
        for (int t = 0; t < kTpn; ++t) (void)node.recv(mps::kAnyThread, 1, 0);
      });
      node.host().join(node.user_thread(tid));
    } else {
      std::vector<int> tids;
      for (int t = 0; t < kTpn; ++t) {
        tids.push_back(node.t_create([&, t] {
          for (int i = 0; i < msgs / kTpn; ++i) {
            (void)node.recv(t, 0, t);
            node.host().charge(compute, sim::Activity::compute);
          }
          node.send(t, 0, 0, Bytes(1, std::byte{1}));
        }, mts::kDefaultPriority, "worker" + std::to_string(t)));
      }
      // Charges in 500us chunks with a yield between them (a cooperative
      // background job, not a core monopolist — charge() keeps CPU
      // ownership, so back-to-back charges would starve the workers).
      // Bounded so an envelope bug cannot hang the bench forever.
      const int hog = node.t_create([&, done] {
        for (int i = 0; i < 200000 && !*done; ++i) {
          node.host().charge(Duration::microseconds(500), sim::Activity::compute);
          node.host().yield();
        }
      }, mts::kDefaultPriority, "analysis");
      for (int tid : tids) node.host().join(node.user_thread(tid));
      *finished = cluster.engine().now();
      *done = true;
      node.host().join(node.user_thread(hog));
    }
  });
  return *finished - TimePoint::origin();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  BenchReport report("overlap_sweep");

  std::printf("Overlap sweep: Fig 4 matmul (2 nodes, %d threads/node, Ethernet)\n"
              "across cores x steal policy x progress model.\n\n", kTpn);
  std::printf("%-6s %-8s %-15s %10s %12s %8s\n", "cores", "steal", "progress",
              "time (s)", "overlap (%)", "steals");

  double overlap_c1 = 0.0;       // the single-core (PR 8) baseline
  double overlap_c2_best = 0.0;  // best multi-core configuration at cores=2
  for (const int cores : {1, 2, 4}) {
    for (const mts::StealPolicy steal : {mts::StealPolicy::none, mts::StealPolicy::seeded}) {
      for (const mts::ProgressModel progress :
           {mts::ProgressModel::dedicated_core, mts::ProgressModel::on_demand,
            mts::ProgressModel::hybrid}) {
        const OverlapPoint p = run_fig4(cores, steal, progress);
        std::printf("%-6d %-8s %-15s %10.3f %12.1f %8llu\n", cores, to_string(steal),
                    to_string(progress), p.elapsed.sec(), p.node_overlap * 100.0,
                    static_cast<unsigned long long>(p.steals));
        if (cores == 1 && steal == mts::StealPolicy::seeded &&
            progress == mts::ProgressModel::dedicated_core)
          overlap_c1 = p.node_overlap;
        if (cores == 2 && p.node_overlap > overlap_c2_best) overlap_c2_best = p.node_overlap;
        report.row();
        report.set("experiment", std::string("fig4_overlap"));
        report.set("cores", cores);
        report.set("steal", std::string(to_string(steal)));
        report.set("progress", std::string(to_string(progress)));
        report.set("elapsed_sec", p.elapsed.sec());
        report.set("overlap_ratio", p.node_overlap);
        report.set("steals", p.steals);
      }
    }
  }
  std::printf("\nnode overlap ratio: %.1f%% at 1 core -> %.1f%% best at 2 cores\n\n",
              overlap_c1 * 100.0, overlap_c2_best * 100.0);

  std::printf("Progress-model crossover: 64 messages to 2 workers + background\n"
              "compute, 2 cores; sweep compute-per-message.\n\n");
  std::printf("%-12s %-12s %14s %14s   %s\n", "size (B)", "compute", "dedicated (s)",
              "on_demand (s)", "winner");
  bool dedicated_wins_somewhere = false;
  bool on_demand_wins_somewhere = false;
  const struct {
    int msgs;
    int size;
    Duration compute;
    const char* label;
  } points[] = {
      {64, 2048, Duration::microseconds(50), "50us"},
      {64, 16384, Duration::microseconds(500), "500us"},
      {64, 16384, Duration::milliseconds(5), "5ms"},
  };
  for (const auto& pt : points) {
    const Duration ded =
        run_progress_point(pt.msgs, pt.size, pt.compute, mts::ProgressModel::dedicated_core);
    const Duration ond =
        run_progress_point(pt.msgs, pt.size, pt.compute, mts::ProgressModel::on_demand);
    const char* winner = ded < ond ? "dedicated_core" : ond < ded ? "on_demand" : "tie";
    if (ded < ond) dedicated_wins_somewhere = true;
    if (ond < ded) on_demand_wins_somewhere = true;
    std::printf("%-12d %-12s %14.4f %14.4f   %s\n", pt.size, pt.label, ded.sec(), ond.sec(),
                winner);
    report.row();
    report.set("experiment", std::string("progress_crossover"));
    report.set("msgs", pt.msgs);
    report.set("size_bytes", pt.size);
    report.set("compute_us", static_cast<double>(pt.compute.ps()) * 1e-6);
    report.set("dedicated_sec", ded.sec());
    report.set("on_demand_sec", ond.sec());
    report.set("winner", std::string(winner));
  }

  const bool overlap_improves = overlap_c2_best > overlap_c1;
  const bool crossover = dedicated_wins_somewhere && on_demand_wins_somewhere;
  std::printf("\noverlap improves 1 -> 2 cores: %s\n", overlap_improves ? "yes" : "NO");
  std::printf("dedicated/on_demand crossover: %s\n", crossover ? "yes" : "NO");

  report.summary("overlap_ratio_cores1", overlap_c1);
  report.summary("overlap_ratio_cores2_best", overlap_c2_best);
  report.summary("overlap_improves", overlap_improves);
  report.summary("progress_crossover", crossover);
  if (opts.json) report.emit(opts.json_path);
  return overlap_improves && crossover ? 0 : 1;
}
