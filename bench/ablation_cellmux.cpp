// Ablation: why ATM cells? Per-cell round-robin multiplexing vs
// frame-at-once FIFO on one 140 Mbps TAXI link: a VOD frame's delivery
// latency while a bulk transfer shares the wire.
#include <cstdio>

#include "atm/cellmux.hpp"

#include "atm/aal5.hpp"
#include "cluster/bench_json.hpp"
#include "common/units.hpp"

using namespace ncs;
using namespace ncs::atm;

namespace {

struct LatencyProbe : CellSink {
  explicit LatencyProbe(sim::Engine& engine) : engine_(engine) {}
  void accept(int, Burst burst) override {
    if (burst.vc.vci == 2) frame_done = engine_.now();
    if (burst.vc.vci == 1) bulk_done = engine_.now();
  }
  sim::Engine& engine_;
  TimePoint frame_done, bulk_done;
};

struct Measurement {
  double frame_ms;
  double bulk_ms;
};

Measurement measure(bool interleave, std::size_t bulk_bytes, std::size_t frame_bytes) {
  sim::Engine engine;
  net::Link link(engine, {.bandwidth_bps = bw::taxi_140,
                          .propagation = Duration::microseconds(2)});
  LatencyProbe probe(engine);
  CellMux mux(engine, link, probe, 0);
  mux.set_interleave(interleave);

  Burst bulk;
  bulk.vc = VcId{0, 1};
  bulk.payload.assign(bulk_bytes, std::byte{1});
  bulk.n_cells = static_cast<std::uint32_t>(aal5::cell_count(bulk_bytes));
  Burst frame;
  frame.vc = VcId{0, 2};
  frame.payload.assign(frame_bytes, std::byte{2});
  frame.n_cells = static_cast<std::uint32_t>(aal5::cell_count(frame_bytes));

  mux.submit(std::move(bulk));
  mux.submit(std::move(frame));  // the VOD frame arrives just behind it
  engine.run();
  return {probe.frame_done.sec() * 1e3, probe.bulk_done.sec() * 1e3};
}

}  // namespace

int main(int argc, char** argv) {
  ncs::cluster::BenchReport report("ablation_cellmux");
  std::printf("Ablation: cell interleaving on a shared 140 Mbps TAXI link.\n");
  std::printf("A 16 KB VOD frame queued right behind a bulk transfer:\n\n");
  std::printf("%12s  %16s %16s %12s\n", "bulk (KB)", "frame, FIFO (ms)",
              "frame, cells (ms)", "speedup");

  for (const std::size_t bulk_kb : {64u, 256u, 1024u, 4096u}) {
    const Measurement fifo = measure(false, bulk_kb * 1024, 16 * 1024);
    const Measurement cells = measure(true, bulk_kb * 1024, 16 * 1024);
    std::printf("%12zu  %16.3f %16.3f %11.1fx\n", bulk_kb, fifo.frame_ms, cells.frame_ms,
                fifo.frame_ms / cells.frame_ms);
    report.row();
    report.set("bulk_kb", static_cast<std::int64_t>(bulk_kb));
    report.set("frame_fifo_ms", fifo.frame_ms);
    report.set("frame_cells_ms", cells.frame_ms);
  }

  const Measurement fifo = measure(false, 1024 * 1024, 16 * 1024);
  const Measurement cells = measure(true, 1024 * 1024, 16 * 1024);
  std::printf("\nThe bulk transfer itself barely notices (%.2f vs %.2f ms): cell\n"
              "interleaving trades nothing for the latency win — the property that\n"
              "made ATM the bet for mixed VOD + HPDC traffic (paper Section 1).\n",
              fifo.bulk_ms, cells.bulk_ms);
  report.summary("bulk_fifo_ms", fifo.bulk_ms);
  report.summary("bulk_cells_ms", cells.bulk_ms);
  if (std::string json_path; ncs::cluster::parse_json_flag(argc, argv, &json_path))
    report.emit(json_path);
  return cells.frame_ms < fifo.frame_ms ? 0 : 1;
}
